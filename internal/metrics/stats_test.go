package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatal("zero Welford not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
	if w.SampleStd() <= w.Std() {
		t.Fatalf("SampleStd %v must exceed population Std %v", w.SampleStd(), w.Std())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 || w.SampleStd() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		return almostEqual(w.Mean(), mean, 1e-6) && almostEqual(w.Var(), m2/float64(len(raw)), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Add(float64(i))
	}
	// Window holds {3,4,5}.
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	if !almostEqual(w.Mean(), 4, 1e-12) {
		t.Fatalf("Mean = %v, want 4", w.Mean())
	}
	wantStd := math.Sqrt(2.0 / 3.0)
	if !almostEqual(w.Std(), wantStd, 1e-12) {
		t.Fatalf("Std = %v, want %v", w.Std(), wantStd)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatal("Reset did not clear window")
	}
	w.Add(7)
	if !almostEqual(w.Mean(), 7, 1e-12) {
		t.Fatalf("Mean after reset+add = %v", w.Mean())
	}
}

func TestWindowCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewWindow(0)
}

// Property: a full window's mean/std match a naive computation over the
// last cap samples.
func TestWindowMatchesNaive(t *testing.T) {
	f := func(raw []int16, capRaw uint8) bool {
		capacity := int(capRaw%31) + 1
		w := NewWindow(capacity)
		for _, r := range raw {
			w.Add(float64(r))
		}
		start := 0
		if len(raw) > capacity {
			start = len(raw) - capacity
		}
		tail := raw[start:]
		if w.Len() != len(tail) {
			return false
		}
		if len(tail) == 0 {
			return true
		}
		var sum float64
		for _, r := range tail {
			sum += float64(r)
		}
		mean := sum / float64(len(tail))
		var m2 float64
		for _, r := range tail {
			d := float64(r) - mean
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(len(tail)))
		return almostEqual(w.Mean(), mean, 1e-6) && almostEqual(w.Std(), std, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.P50, 5.5, 1e-12) {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P90 < s.P50 || s.P99 < s.P90 {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{5, 1, 3}
	if Quantile(xs, 0) != 1 {
		t.Fatal("q=0 should be min")
	}
	if Quantile(xs, 1) != 5 {
		t.Fatal("q=1 should be max")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if Quantile([]float64{9}, 0.5) != 9 {
		t.Fatal("single-element quantile")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{100, 200, 300, 400})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{50, 0}, {100, 0.25}, {250, 0.5}, {400, 1}, {1000, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Inverse(0.5); got != 200 {
		t.Fatalf("Inverse(0.5) = %v, want 200", got)
	}
	if got := c.Inverse(1.0); got != 400 {
		t.Fatalf("Inverse(1.0) = %v, want 400", got)
	}
	if !almostEqual(c.Mean(), 250, 1e-12) {
		t.Fatalf("Mean = %v", c.Mean())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Inverse(0.5) != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
	if pts := c.Points(5); pts != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

// Property: CDF.At is monotone non-decreasing and hits 0/1 at extremes.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -10.0; x < 1100; x += 7 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(-1) == 0 && c.At(1e9) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Inverse is a right-inverse of At: At(Inverse(p)) ≥ p.
func TestPropertyCDFInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		c := NewCDF(xs)
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 1.0} {
			if c.At(c.Inverse(p)) < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(1*time.Second, 10)
	ts.Add(2*time.Second, 20)
	ts.Add(3*time.Second, 30)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if v, ok := ts.At(2500 * time.Millisecond); !ok || v != 20 {
		t.Fatalf("At(2.5s) = %v, %v", v, ok)
	}
	if _, ok := ts.At(500 * time.Millisecond); ok {
		t.Fatal("At before first point should be not-ok")
	}
	if ts.Max() != 30 {
		t.Fatalf("Max = %v", ts.Max())
	}
	if !almostEqual(ts.Mean(), 20, 1e-12) {
		t.Fatalf("Mean = %v", ts.Mean())
	}
	if got := ts.MeanBetween(1500*time.Millisecond, 3500*time.Millisecond); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("MeanBetween = %v", got)
	}
	if got := ts.MeanBetween(10*time.Second, 20*time.Second); got != 0 {
		t.Fatalf("MeanBetween outside = %v", got)
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 100; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i))
	}
	d := ts.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled Len = %d", d.Len())
	}
	if d.Times[0] != 0 || d.Times[9] != 99*time.Second {
		t.Fatalf("downsample lost endpoints: %v", d.Times)
	}
	if ts.Downsample(1000).Len() != 100 {
		t.Fatal("upsample should be identity")
	}
}

func TestIntervals(t *testing.T) {
	var iv Intervals
	iv.Add(1*time.Second, 3*time.Second)
	iv.Add(10*time.Second, 11*time.Second)
	if iv.Count() != 2 {
		t.Fatalf("Count = %d", iv.Count())
	}
	if iv.Total() != 3*time.Second {
		t.Fatalf("Total = %v", iv.Total())
	}
	if !iv.Contains(2 * time.Second) {
		t.Fatal("Contains(2s) = false")
	}
	if iv.Contains(5 * time.Second) {
		t.Fatal("Contains(5s) = true")
	}
	if got := iv.TotalBetween(2*time.Second, 11*time.Second); got != 2*time.Second {
		t.Fatalf("TotalBetween = %v", got)
	}
	// Reversed span is normalized.
	iv.Add(20*time.Second, 15*time.Second)
	if iv.Ends[2] != 20*time.Second || iv.Starts[2] != 15*time.Second {
		t.Fatal("reversed span not normalized")
	}
}

func TestDurationsToMillis(t *testing.T) {
	out := DurationsToMillis([]time.Duration{time.Second, 250 * time.Millisecond})
	if out[0] != 1000 || out[1] != 250 {
		t.Fatalf("got %v", out)
	}
}

func TestRenderCDFsAndSeries(t *testing.T) {
	// Smoke tests: rendering must not panic and must mention series names.
	s := RenderCDFs(map[string]*CDF{"raft": NewCDF([]float64{1, 2, 3})}, 5, 20)
	if len(s) == 0 {
		t.Fatal("empty render")
	}
	ts := NewTimeSeries("rtt")
	ts.Add(time.Second, 50)
	out := RenderSeries(10, ts)
	if len(out) == 0 {
		t.Fatal("empty series render")
	}
	if RenderSeries(10) != "" {
		t.Fatal("no-series render should be empty")
	}
}

func TestCI95(t *testing.T) {
	if got := CI95(nil); got != 0 {
		t.Fatalf("CI95(nil) = %v", got)
	}
	if got := CI95([]float64{5}); got != 0 {
		t.Fatalf("CI95 of one sample = %v", got)
	}
	// Four samples with sample std 1: half-width = 1.96/sqrt(4) = 0.98.
	xs := []float64{9, 10, 10, 11}
	want := 1.96 * math.Sqrt(2.0/3.0) / 2
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	// Constant samples: zero interval.
	if got := CI95([]float64{3, 3, 3}); got != 0 {
		t.Fatalf("CI95 of constants = %v", got)
	}
}
