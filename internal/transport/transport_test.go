package transport

import (
	"sync"
	"testing"
	"time"

	"dynatune/internal/raft"
)

// pairUp starts two transports wired to each other on loopback ephemeral
// ports and returns them plus their inboxes.
func pairUp(t *testing.T) (*Transport, *Transport, chan raft.Message, chan raft.Message) {
	t.Helper()
	in1 := make(chan raft.Message, 256)
	in2 := make(chan raft.Message, 256)
	t1, err := Start(Config{
		ID:      1,
		Listen:  PeerAddr{TCP: "127.0.0.1:0", UDP: "127.0.0.1:0"},
		Handler: func(m raft.Message) { in1 <- m },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t1.Close() })
	t2, err := Start(Config{
		ID:      2,
		Listen:  PeerAddr{TCP: "127.0.0.1:0", UDP: "127.0.0.1:0"},
		Handler: func(m raft.Message) { in2 <- m },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t2.Close() })
	t1.SetPeer(2, t2.Addrs())
	t2.SetPeer(1, t1.Addrs())
	return t1, t2, in1, in2
}

func recvOne(t *testing.T, ch chan raft.Message) raft.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for message")
		return raft.Message{}
	}
}

func TestTCPDelivery(t *testing.T) {
	t1, _, _, in2 := pairUp(t)
	want := raft.Message{
		Type: raft.MsgApp, From: 1, To: 2, Term: 5, Index: 3, LogTerm: 4, Commit: 2,
		Entries: []raft.Entry{{Term: 5, Index: 4, Data: []byte("payload")}},
	}
	t1.Send(want)
	got := recvOne(t, in2)
	if got.Type != raft.MsgApp || got.Term != 5 || len(got.Entries) != 1 || string(got.Entries[0].Data) != "payload" {
		t.Fatalf("got %+v", got)
	}
}

func TestUDPHeartbeatDelivery(t *testing.T) {
	t1, t2, in1, in2 := pairUp(t)
	hb := raft.Message{
		Type: raft.MsgHeartbeat, From: 1, To: 2, Term: 9, Commit: 1,
		HB: raft.HeartbeatMeta{Seq: 77, SendTime: 123, RTT: 456},
	}
	t1.Send(hb)
	got := recvOne(t, in2)
	if got.HB.Seq != 77 || got.HB.SendTime != 123 {
		t.Fatalf("heartbeat meta lost: %+v", got.HB)
	}
	// Response comes back over UDP too.
	t2.Send(raft.Message{
		Type: raft.MsgHeartbeatResp, From: 2, To: 1, Term: 9,
		HBResp: raft.HeartbeatRespMeta{EchoTime: 123, Interval: 999},
	})
	resp := recvOne(t, in1)
	if resp.HBResp.EchoTime != 123 || resp.HBResp.Interval != 999 {
		t.Fatalf("resp meta lost: %+v", resp.HBResp)
	}
}

func TestManyMessagesInOrderOverTCP(t *testing.T) {
	t1, _, _, in2 := pairUp(t)
	const n = 500
	for i := 0; i < n; i++ {
		t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: uint64(i)})
	}
	for i := 0; i < n; i++ {
		m := recvOne(t, in2)
		if m.Term != uint64(i) {
			t.Fatalf("out of order: got term %d at position %d", m.Term, i)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	t1, _, _, in2 := pairUp(t)
	const per = 100
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				t1.Send(raft.Message{Type: raft.MsgAppResp, From: 1, To: 2, Index: uint64(i)})
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 8*per; i++ {
		recvOne(t, in2)
	}
}

func TestUnknownPeerDropped(t *testing.T) {
	t1, _, _, _ := pairUp(t)
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 99})
	t1.Send(raft.Message{Type: raft.MsgHeartbeat, From: 1, To: 99})
	if t1.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", t1.Drops())
	}
}

func TestMisaddressedFrameIgnored(t *testing.T) {
	t1, t2, _, in2 := pairUp(t)
	// Register node 2's real addresses under the bogus id 7, then send a
	// frame addressed To=7: it lands on node 2's listener, which must
	// discard it rather than deliver it to the handler.
	t1.SetPeer(7, t2.Addrs())
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 7})
	t1.Send(raft.Message{Type: raft.MsgHeartbeat, From: 1, To: 7})
	select {
	case m := <-in2:
		t.Fatalf("misaddressed frame delivered: %+v", m)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	t1, t2, _, in2 := pairUp(t)
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 1})
	recvOne(t, in2)
	// Restart peer 2 on fresh ports.
	t2.Close()
	in2b := make(chan raft.Message, 16)
	t2b, err := Start(Config{
		ID:      2,
		Listen:  PeerAddr{TCP: "127.0.0.1:0", UDP: "127.0.0.1:0"},
		Handler: func(m raft.Message) { in2b <- m },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	t1.SetPeer(2, t2b.Addrs())
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 2})
	got := recvOne(t, in2b)
	if got.Term != 2 {
		t.Fatalf("term = %d", got.Term)
	}
}

func TestSendAfterBrokenConnRecovers(t *testing.T) {
	t1, t2, _, in2 := pairUp(t)
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 1})
	recvOne(t, in2)
	// Break t1's outbound socket under it (close() would retire the conn
	// permanently — that is SetPeer/Close territory); the next send hits a
	// write error, queues, and the redialer must deliver it.
	t1.mu.Lock()
	oc := t1.conns[2]
	t1.mu.Unlock()
	oc.mu.Lock()
	oc.c.Close()
	oc.mu.Unlock()
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 2})
	got := recvOne(t, in2)
	if got.Term != 2 {
		t.Fatalf("term after reconnect = %d", got.Term)
	}
	_ = t2
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("expected error without ID")
	}
	if _, err := Start(Config{ID: 1}); err == nil {
		t.Fatal("expected error without handler")
	}
	if _, err := Start(Config{ID: 1, Listen: PeerAddr{TCP: "256.0.0.1:1", UDP: "127.0.0.1:0"}, Handler: func(raft.Message) {}}); err == nil {
		t.Fatal("expected error for bad tcp address")
	}
}
