package wireclient

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// PoolConfig tunes a connection pool.
type PoolConfig struct {
	// Size is how many connections to keep per address (default 2). A
	// pipelined connection carries many concurrent requests, so small
	// pools saturate loopback; raise for high-RTT links.
	Size int
	// DialTimeout bounds each connect attempt (default 2s).
	DialTimeout time.Duration
	// Conn configures each pooled connection.
	Conn ConnConfig
	// BackoffBase/BackoffMax shape redial pacing after a failed dial:
	// capped exponential with full jitter (defaults 20ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (c *PoolConfig) defaults() {
	if c.Size <= 0 {
		c.Size = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 20 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
}

// Pool maintains a fixed set of pipelined connections to one address,
// handing them out round-robin. Dead connections are redialed lazily with
// capped exponential backoff, so a crashed server costs at most one
// failed attempt per backoff interval rather than a dial storm.
type Pool struct {
	addr string
	cfg  PoolConfig

	next  atomic.Uint64
	slots []poolSlot

	closed atomic.Bool
}

type poolSlot struct {
	mu       sync.Mutex
	conn     *Conn
	fails    int
	notUntil time.Time // no dial attempts before this instant
}

// NewPool creates a pool for addr; connections are dialed on first use.
func NewPool(addr string, cfg PoolConfig) *Pool {
	cfg.defaults()
	return &Pool{addr: addr, cfg: cfg, slots: make([]poolSlot, cfg.Size)}
}

// Addr returns the pooled address.
func (p *Pool) Addr() string { return p.addr }

// Get returns a live connection, dialing if the chosen slot is empty or
// dead. During a backoff window it fails fast instead of dialing.
func (p *Pool) Get() (*Conn, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	s := &p.slots[p.next.Add(1)%uint64(len(p.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil && s.conn.Err() == nil {
		return s.conn, nil
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	if now := time.Now(); now.Before(s.notUntil) {
		return nil, fmt.Errorf("wireclient: %s dial backoff (%v left)", p.addr, s.notUntil.Sub(now).Round(time.Millisecond))
	}
	c, err := Dial(p.addr, p.cfg.DialTimeout, p.cfg.Conn)
	if err != nil {
		s.fails++
		s.notUntil = time.Now().Add(backoff(p.cfg.BackoffBase, p.cfg.BackoffMax, s.fails))
		return nil, err
	}
	s.fails = 0
	s.notUntil = time.Time{}
	s.conn = c
	return c, nil
}

// Do issues req on a pooled connection.
func (p *Pool) Do(r *Request, cb func(Response, error)) {
	c, err := p.Get()
	if err != nil {
		cb(Response{}, err)
		return
	}
	c.Do(r, cb)
}

// Call issues req on a pooled connection and waits.
func (p *Pool) Call(r *Request) (Response, error) {
	c, err := p.Get()
	if err != nil {
		return Response{}, err
	}
	return c.Call(r)
}

// Close tears down every pooled connection.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
}

// backoff is capped exponential with full jitter: uniform over
// (0, min(max, base·2^(fails-1))].
func backoff(base, max time.Duration, fails int) time.Duration {
	d := base << (fails - 1)
	if fails > 20 || d > max || d <= 0 {
		d = max
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}
