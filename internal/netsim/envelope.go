package netsim

// Envelope multiplexing for multi-Raft consolidation: when many Raft
// groups are co-located on the same simulated nodes (the shard layer),
// running one mesh per group would give every group its own link state —
// G copies of the profile schedule, G tcpFloors per node pair, and one
// wire packet per (group, message). A single Network[Envelope[T]] carries
// every group's traffic instead: each directed node pair has exactly one
// link (so a fault cuts the physical path once and every group riding it
// is affected), and messages bound for the same peer within a delivery
// window ship as one envelope of per-group payloads, unbatched on
// arrival. This mirrors TiKV's multi-Raft transport, where all regions
// on a store share one gRPC connection per peer store.

// GroupMsg is one group-addressed payload inside an Envelope. Group is
// the sender-side demux key — the shard fabric uses a monotonically
// unique attach ID rather than a reusable slot index, so an envelope
// still in flight when its group is decommissioned lands on the retired
// (paused) group instead of whichever group later reuses the slot.
type GroupMsg[T any] struct {
	Group int
	Msg   T
}

// Envelope is one simulated wire packet carrying a batch of per-group
// messages between the same pair of physical nodes. Under TCP semantics
// the whole envelope is one segment: it is lost, retransmitted and
// ordered as a unit, exactly like a multiplexed stream's write.
type Envelope[T any] struct {
	Msgs []GroupMsg[T]

	// Recycle marks the Msgs slice as returnable to the sender's pool once
	// the receiver has demuxed it. Only exactly-once transports may set it:
	// a TCP-class envelope is delivered at most once, while UDP duplication
	// would hand the same slice to the sink twice and alias the pool.
	Recycle bool
}

// TotalStats sums every directed link's counters — the mesh-wide wire
// traffic. For an envelope-multiplexed mesh this counts envelopes, not
// the logical messages inside them; comparing it against the sender's
// logical count yields the batching factor.
func (nw *Network[T]) TotalStats() Stats {
	var total Stats
	for _, l := range nw.links {
		for cls := 0; cls < 2; cls++ {
			total.Sent[cls] += l.stats.Sent[cls]
			total.Delivered[cls] += l.stats.Delivered[cls]
			total.Dropped[cls] += l.stats.Dropped[cls]
		}
		total.Retrans += l.stats.Retrans
		total.Dups += l.stats.Dups
	}
	return total
}
