//go:build !linux

package loadharness

// Non-Linux stubs: no affinity syscall, no /proc — pinning is a no-op
// and stages simply omit core utilization.

func pinToCore(core int) error { return nil }

type cpuSample struct{}

func sampleCPU() *cpuSample { return nil }

func cpuUtil(before, after *cpuSample) []float64 { return nil }
