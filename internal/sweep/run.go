package sweep

import (
	"fmt"

	"dynatune/internal/cluster"
	"dynatune/internal/metrics"
	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// Report is one executed campaign — what the emitters render and the
// baseline gate consumes.
type Report struct {
	Scenario string `json:"scenario"`
	Measure  string `json:"measure"`
	Variant  string `json:"variant"`
	Axes     []Axis `json:"axes"`
	Reps     int    `json:"reps"`
	Seed     int64  `json:"seed"`
	Rows     []Row  `json:"rows"`
}

// Row is one grid cell's aggregate.
type Row struct {
	// Cell holds the axis values in campaign axis order.
	Cell    []string        `json:"cell"`
	Metrics []MetricSummary `json:"metrics"`
}

// Key renders the row's cell identity ("n=3 loss=0.1") against the
// report's axes.
func (r Row) Key(axes []Axis) string {
	return Cell{Values: r.Cell}.Key(axes)
}

// MetricSummary is one metric's per-cell statistics: a metrics.Summary
// over the samples pooled across repetitions, plus the 95% CI of the
// per-rep means (0 with a single rep).
type MetricSummary struct {
	Name    string  `json:"name"`
	Better  string  `json:"better"`
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	Std     float64 `json:"std"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	CI95    float64 `json:"ci95"`
}

// Run expands and executes the campaign. Every (cell, rep) unit runs the
// cell's spec sequentially inside (bind.RunWorkers with one worker) on a
// seed derived from the unit's grid coordinates, while the units
// themselves fan out on cluster.RunSharded — the same runner, and the
// same determinism contract, as the per-experiment trial shards.
func Run(c Campaign) (*Report, error) {
	cells, err := c.Cells()
	if err != nil {
		return nil, err
	}
	// Realize every cell's env up front so an unknown variant or region
	// fails before any simulation runs.
	for _, cell := range cells {
		if _, err := bind.EnvFor(cell.Spec); err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cell.Key(c.Axes), err)
		}
	}
	mset, err := metricSet(cells[0].Spec)
	if err != nil {
		return nil, err
	}
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	workers := c.Workers
	if workers <= 0 {
		workers = cluster.TrialWorkers()
	}

	type unitOut struct {
		samples [][]float64 // per metric
		err     error
	}
	units := len(cells) * reps
	outs := cluster.RunSharded(workers, units, func(u int) unitOut {
		ci, rep := u/reps, u%reps
		spec := cells[ci].Spec.Clone()
		spec.Seed = UnitSeed(c.Seed, ci, rep)
		if spec.Measure == scenario.MeasureThroughput {
			// The campaign owns repetition; one ramp per unit.
			spec.Reps = 1
		}
		res, err := bind.RunWorkers(spec, 1)
		if err != nil {
			return unitOut{err: fmt.Errorf("sweep: cell %s rep %d: %w", cells[ci].Key(c.Axes), rep, err)}
		}
		out := unitOut{samples: make([][]float64, len(mset))}
		for m, def := range mset {
			out.samples[m] = def.extract(res)
		}
		return out
	})

	rep := &Report{
		Scenario: c.Base.Name,
		Measure:  string(c.Base.Measure),
		Variant:  c.Base.Variant.Name,
		Axes:     c.Axes,
		Reps:     reps,
		Seed:     c.Seed,
		Rows:     make([]Row, len(cells)),
	}
	for _, ax := range c.Axes {
		if ax.Name == "variant" {
			// The header field would mislabel a mixed-variant campaign;
			// the axis column carries the truth per cell.
			rep.Variant = ""
			break
		}
	}
	for ci, cell := range cells {
		row := Row{Cell: cell.Values, Metrics: make([]MetricSummary, len(mset))}
		for m, def := range mset {
			var pooled []float64
			repMeans := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				out := outs[ci*reps+r]
				if out.err != nil {
					return nil, out.err
				}
				s := out.samples[m]
				pooled = append(pooled, s...)
				if len(s) == 0 {
					// A rep with no samples (e.g. every trial failed) has no
					// mean; a fake 0 would corrupt the CI over reps.
					continue
				}
				var w metrics.Welford
				for _, x := range s {
					w.Add(x)
				}
				repMeans = append(repMeans, w.Mean())
			}
			sum := metrics.Summarize(pooled)
			row.Metrics[m] = MetricSummary{
				Name: def.name, Better: def.better,
				Samples: sum.N, Mean: sum.Mean, Std: sum.Std,
				Min: sum.Min, Max: sum.Max,
				P50: sum.P50, P90: sum.P90, P99: sum.P99,
				CI95: metrics.CI95(repMeans),
			}
		}
		rep.Rows[ci] = row
	}
	return rep, nil
}
