package loadharness

// Worker-process sharding. RLIMIT_NOFILE is enforced per process, and a
// hardened container can pin the hard limit low enough (20k is common)
// that one process cannot hold 100k loopback connections — every conn
// costs two descriptors when both ends live in the same process. The
// harness therefore re-execs itself into N workers. Each worker runs a
// PRIVATE BinFront over the same fleet nodes: the front multiplexes its
// slice of client connections onto a few pooled pipelined backend
// conns, so the fleet process's descriptor count stays flat no matter
// how many workers pile on. The parent keeps workers in lock-step per
// ramp stage — dial barrier first, then overlapping measured windows —
// and merges counts plus raw latency samples centrally, because
// quantiles do not compose from per-worker quantiles.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"time"

	"dynatune/internal/server"
	"dynatune/internal/wireclient"
)

// workerFDOverhead is each worker's non-connection descriptor budget:
// its private front's backend pools, listener, epoll, stdio.
const workerFDOverhead = 2048

// workerInit is the first line on a worker's stdin.
type workerInit struct {
	Addr         string        `json:"addr"`
	FleetBins    [][]string    `json:"fleet_bins,omitempty"`
	WriteFrac    float64       `json:"write_frac"`
	Keys         int           `json:"keys"`
	ValueBytes   int           `json:"value_bytes"`
	SLA          time.Duration `json:"sla"`
	Coalesce     time.Duration `json:"coalesce"`
	DialParallel int           `json:"dial_parallel"`
	// Core pins the worker process to one CPU (-1 leaves it unpinned).
	Core int `json:"core"`
}

type workerHello struct {
	OK    bool   `json:"ok"`
	Front string `json:"front"`
	Err   string `json:"err,omitempty"`
}

// workerCmd drives one worker step: "dial" grows the conn set to Conns
// and acks (the parent barriers on every ack so measured windows overlap
// at full concurrency), "run" executes one open-loop window.
type workerCmd struct {
	Op    string        `json:"op"`
	Conns int           `json:"conns,omitempty"`
	Rate  float64       `json:"rate,omitempty"`
	Dur   time.Duration `json:"dur,omitempty"`
}

type workerReport struct {
	Op    string       `json:"op"`
	Err   string       `json:"err,omitempty"`
	Stage *StageResult `json:"stage,omitempty"`
	Lats  []float64    `json:"lats,omitempty"`
}

// WorkerMain is the subprocess entry point behind Options.WorkerCmd
// (`dynabench load-worker`): JSON commands in on r, JSON reports out on
// w, exit on EOF. Nothing else may write to w — the fleet logger and
// all progress go to stderr or nowhere.
func WorkerMain(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	var init workerInit
	if err := dec.Decode(&init); err != nil {
		return fmt.Errorf("loadharness worker: init: %w", err)
	}
	if init.Core >= 0 {
		// Pin before spawning connection goroutines so every runtime
		// thread inherits the mask. Best effort: a masked syscall only
		// costs the pinning, not the run.
		if err := pinToCore(init.Core); err != nil {
			fmt.Fprintf(os.Stderr, "loadharness worker: pin to core %d: %v\n", init.Core, err)
		}
	}
	o := Options{
		Addr:           init.Addr,
		WriteFrac:      init.WriteFrac,
		Keys:           init.Keys,
		ValueBytes:     init.ValueBytes,
		SLA:            init.SLA,
		CoalesceWindow: init.Coalesce,
		DialParallel:   init.DialParallel,
		// A worker's private front is its own dial destination, so one
		// source IP's ephemeral range covers the whole per-worker slice.
		SourceIPs: []string{"127.0.0.1"},
	}
	var front *server.BinFront
	if len(init.FleetBins) > 0 {
		var err error
		front, err = server.StartBinFront("127.0.0.1:0", init.FleetBins,
			wireclient.PoolConfig{Size: 2}, log.New(io.Discard, "", 0))
		if err != nil {
			enc.Encode(workerHello{Err: err.Error()}) //nolint:errcheck // already failing
			return fmt.Errorf("loadharness worker: front: %w", err)
		}
		defer front.Close()
		o.Addr = front.Addr()
	}
	if err := o.defaults(); err != nil {
		enc.Encode(workerHello{Err: err.Error()}) //nolint:errcheck // already failing
		return err
	}
	if err := enc.Encode(workerHello{OK: true, Front: o.Addr}); err != nil {
		return err
	}

	var conns []*wireclient.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for {
		var cmd workerCmd
		if err := dec.Decode(&cmd); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // parent is done with us
			}
			return err
		}
		switch cmd.Op {
		case "dial":
			RaiseFDLimit(uint64(cmd.Conns)*2 + fdSlack) //nolint:errcheck // best effort; a short budget surfaces as dial errors
			var err error
			conns, err = growConns(conns, cmd.Conns, o)
			rep := workerReport{Op: "dial"}
			if err != nil {
				rep.Err = err.Error()
			}
			if err := enc.Encode(rep); err != nil {
				return err
			}
		case "run":
			o.StageDuration = cmd.Dur
			sr, lats := runStage(conns, cmd.Rate, o)
			if err := enc.Encode(workerReport{Op: "run", Stage: &sr, Lats: lats}); err != nil {
				return err
			}
		default:
			if err := enc.Encode(workerReport{Op: cmd.Op, Err: "unknown op"}); err != nil {
				return err
			}
		}
	}
}

// workerProc is the parent's handle on one spawned worker.
type workerProc struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	enc *json.Encoder
	dec *json.Decoder
}

func startWorker(o Options, core int) (*workerProc, error) {
	c := exec.Command(o.WorkerCmd[0], o.WorkerCmd[1:]...) //nolint:gosec // argv comes from our own caller
	c.Env = append(os.Environ(), o.WorkerEnv...)
	c.Stderr = os.Stderr
	in, err := c.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := c.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	w := &workerProc{cmd: c, in: in, enc: json.NewEncoder(in), dec: json.NewDecoder(out)}
	if err := w.enc.Encode(workerInit{
		Addr: o.Addr, FleetBins: o.FleetBins,
		WriteFrac: o.WriteFrac, Keys: o.Keys, ValueBytes: o.ValueBytes,
		SLA: o.SLA, Coalesce: o.CoalesceWindow, DialParallel: o.DialParallel,
		Core: core,
	}); err != nil {
		w.stop()
		return nil, err
	}
	var hello workerHello
	if err := w.dec.Decode(&hello); err != nil {
		w.stop()
		return nil, fmt.Errorf("worker hello: %w", err)
	}
	if !hello.OK {
		w.stop()
		return nil, errors.New(hello.Err)
	}
	return w, nil
}

func (w *workerProc) send(cmd workerCmd) error { return w.enc.Encode(cmd) }

func (w *workerProc) recv() (workerReport, error) {
	var rep workerReport
	if err := w.dec.Decode(&rep); err != nil {
		return rep, err
	}
	if rep.Err != "" {
		return rep, errors.New(rep.Err)
	}
	return rep, nil
}

// stop closes the worker's stdin (its exit signal) and reaps it, killing
// after a grace period so a wedged worker cannot hang the parent.
func (w *workerProc) stop() {
	w.in.Close()
	done := make(chan struct{})
	go func() { w.cmd.Wait(); close(done) }() //nolint:errcheck // exit status is uninteresting
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		w.cmd.Process.Kill() //nolint:errcheck // best effort
		<-done
	}
}

// runSharded executes the ramp across worker subprocesses when one
// process's descriptor budget cannot hold every connection.
func runSharded(o Options, fdLimit uint64) (*Result, error) {
	per := 0
	if fdLimit > workerFDOverhead {
		per = int(fdLimit-workerFDOverhead) / 2
	}
	if per < 8 {
		return nil, fmt.Errorf("loadharness: fd limit %d leaves no room to shard", fdLimit)
	}
	nw := (o.Conns + per - 1) / per
	if o.Progress != nil {
		o.Progress(fmt.Sprintf("fd limit %d < ~%d needed: sharding %d conns across %d workers (private fronts, ≤%d conns each)",
			fdLimit, uint64(o.Conns)*2+fdSlack, o.Conns, nw, per))
	}
	// Pin workers round-robin when the machine has cores to spread over;
	// on one core pinning would just serialize the generators behind the
	// fleet, so it stays off.
	cores := runtime.NumCPU()
	pin := o.PinCores && cores > 1
	if o.PinCores && !pin && o.Progress != nil {
		o.Progress("core pinning requested but only 1 CPU is available; skipping")
	}
	ws := make([]*workerProc, 0, nw)
	defer func() {
		for _, w := range ws {
			w.stop()
		}
	}()
	for i := 0; i < nw; i++ {
		core := -1
		if pin {
			core = i % cores
		}
		w, err := startWorker(o, core)
		if err != nil {
			return nil, fmt.Errorf("loadharness: worker %d: %w", i, err)
		}
		ws = append(ws, w)
	}

	res := &Result{Conns: o.Conns}
	for stage := 0; stage < o.Stages; stage++ {
		want := stageConns(o, stage)
		rate := o.Rate * float64(want) / float64(o.Conns)
		targets := splitEven(want, nw)

		// Dial barrier: every worker reaches its target before any
		// window starts, so the measured windows overlap at the stage's
		// full concurrency instead of racing the slowest dialer.
		for i, w := range ws {
			if err := w.send(workerCmd{Op: "dial", Conns: targets[i]}); err != nil {
				return nil, fmt.Errorf("loadharness: worker %d: %w", i, err)
			}
		}
		for i, w := range ws {
			if _, err := w.recv(); err != nil {
				return nil, fmt.Errorf("loadharness: worker %d: dial to %d conns: %w", i, targets[i], err)
			}
		}

		stopProf, err := profileStage(o, stage)
		if err != nil {
			return nil, err
		}
		before := sampleCPU()
		for i, w := range ws {
			r := rate * float64(targets[i]) / float64(want)
			if err := w.send(workerCmd{Op: "run", Rate: r, Dur: o.StageDuration}); err != nil {
				return nil, fmt.Errorf("loadharness: worker %d: %w", i, err)
			}
		}
		merged := StageResult{TargetRate: rate, SLAMs: float64(o.SLA) / float64(time.Millisecond)}
		var lats []float64
		for i, w := range ws {
			rep, err := w.recv()
			if err != nil {
				return nil, fmt.Errorf("loadharness: worker %d: stage: %w", i, err)
			}
			merged.Conns += rep.Stage.Conns
			merged.Issued += rep.Stage.Issued
			merged.OK += rep.Stage.OK
			merged.NotFound += rep.Stage.NotFound
			merged.Errors += rep.Stage.Errors
			merged.WithinSLA += rep.Stage.WithinSLA
			lats = append(lats, rep.Lats...)
		}
		merged.CoreUtil = cpuUtil(before, sampleCPU())
		stopProf()
		finalizeStage(&merged, lats, o.StageDuration)
		res.Stages = append(res.Stages, merged)
		progressStage(o, stage, merged)
	}
	res.Peak = res.Stages[len(res.Stages)-1]
	return res, nil
}

// splitEven spreads total across n near-equal shares.
func splitEven(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
		if i < total%n {
			out[i]++
		}
	}
	return out
}
