package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures raw event throughput — the budget every
// simulated experiment spends.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+time.Microsecond, func() {})
		e.Step()
	}
}

// BenchmarkTimerChurn measures the set/cancel pattern raft timers follow.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	var h Handle
	for i := 0; i < b.N; i++ {
		e.Cancel(h)
		h = e.Schedule(e.Now()+time.Millisecond, func() {})
		if i%64 == 0 {
			e.Step()
		}
	}
}
