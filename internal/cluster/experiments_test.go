package cluster

import (
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/workload"
)

func TestRunElectionTrialsProducesSamples(t *testing.T) {
	res := RunElectionTrials(Options{N: 5, Seed: 31, Variant: VariantRaft(), Profile: stableNet(100)}, 10, 3*time.Second)
	if len(res.OTSMs) < 8 || len(res.DetectionMs) < 8 {
		t.Fatalf("samples: det=%d ots=%d failed=%d", len(res.DetectionMs), len(res.OTSMs), res.FailedTrials)
	}
	det, ots := res.Summary()
	if det.Mean <= 0 || ots.Mean <= 0 {
		t.Fatal("zero means")
	}
	// OTS includes detection: every trial's OTS must exceed its detection.
	if ots.Mean <= det.Mean {
		t.Fatalf("mean OTS %.0f ≤ mean detection %.0f", ots.Mean, det.Mean)
	}
	// Raft's randomized timeouts average ≈1.5×Et.
	if res.MeanRandTimeoutMs < 1200 || res.MeanRandTimeoutMs > 1800 {
		t.Fatalf("mean randomized timeout %.0fms, want ≈1500", res.MeanRandTimeoutMs)
	}
}

func TestRunElectionTrialsDynatuneRandTimeout(t *testing.T) {
	res := RunElectionTrials(Options{N: 5, Seed: 33, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)}, 10, 4*time.Second)
	// Paper reports ≈152ms mean randomizedTimeout for Dynatune at RTT
	// 100ms (Et≈µ+2σ, randomized ∈ [Et, 2Et)).
	if res.MeanRandTimeoutMs < 100 || res.MeanRandTimeoutMs > 400 {
		t.Fatalf("dynatune mean randomized timeout %.0fms, want ≈150-250", res.MeanRandTimeoutMs)
	}
}

func TestRunFluctuationSeriesShape(t *testing.T) {
	prof := netsim.RTTSteps(netsim.Params{Jitter: 2 * time.Millisecond}, 30*time.Second,
		50*time.Millisecond, 150*time.Millisecond)
	res := RunFluctuation(Options{N: 5, Seed: 35, Variant: VariantDynatune(dynatune.Options{}), Profile: prof},
		time.Minute, 5*time.Second)
	if res.RandTimeout3rdMs.Len() < 50 {
		t.Fatalf("series too short: %d points", res.RandTimeout3rdMs.Len())
	}
	// RTT series must reflect the schedule.
	if v, _ := res.LinkRTTMs.At(10 * time.Second); v != 50 {
		t.Fatalf("RTT@10s = %v, want 50", v)
	}
	if v, _ := res.LinkRTTMs.At(50 * time.Second); v != 150 {
		t.Fatalf("RTT@50s = %v, want 150", v)
	}
	// Tuned randomized timeout in the second phase should track the higher
	// RTT: clearly above 150ms, clearly below the 1000ms default.
	late := res.RandTimeout3rdMs.MeanBetween(45*time.Second, 60*time.Second)
	if late < 150 || late > 700 {
		t.Fatalf("late randomizedTimeout %.0fms not tracking RTT 150ms", late)
	}
	if res.OTS.Total() > 2*time.Second {
		t.Fatalf("OTS %.1fs under benign fluctuation", res.OTS.Total().Seconds())
	}
}

func TestRunFluctuationRaftLowSuffersAtHighRTT(t *testing.T) {
	// Compressed Fig-6a essence: RTT steps past Raft-Low's 100ms timeout
	// cause OTS; Dynatune stays clean. 3 minutes of simulated time.
	prof := netsim.RTTSteps(netsim.Params{Jitter: 2 * time.Millisecond}, 30*time.Second,
		50*time.Millisecond, 120*time.Millisecond, 160*time.Millisecond,
		200*time.Millisecond, 160*time.Millisecond, 50*time.Millisecond)
	horizon := 3 * time.Minute
	low := RunFluctuation(Options{N: 5, Seed: 37, Variant: VariantRaftLow(), Profile: prof}, horizon, 5*time.Second)
	dyn := RunFluctuation(Options{N: 5, Seed: 37, Variant: VariantDynatune(dynatune.Options{}), Profile: prof}, horizon, 5*time.Second)
	if low.OTS.Total() < 2*time.Second {
		t.Fatalf("Raft-Low OTS only %.1fs; expected election cascades", low.OTS.Total().Seconds())
	}
	if dyn.OTS.Total() > low.OTS.Total()/4 {
		t.Fatalf("Dynatune OTS %.1fs vs Raft-Low %.1fs — insufficient separation",
			dyn.OTS.Total().Seconds(), low.OTS.Total().Seconds())
	}
}

func TestRunFluctuationRadicalSpikeNoOTSForDynatune(t *testing.T) {
	// Fig-6b essence: an abrupt 50→500ms spike causes false detections
	// (timeouts + reverts) but no elections and no OTS under Dynatune.
	prof := netsim.RadicalRTTSpike(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 500*time.Millisecond, time.Minute)
	res := RunFluctuation(Options{N: 5, Seed: 39, Variant: VariantDynatune(dynatune.Options{}), Profile: prof},
		3*time.Minute, 5*time.Second)
	if res.Timeouts == 0 {
		t.Fatal("expected false detections at the spike")
	}
	if res.Reverts == 0 {
		t.Fatal("expected pre-vote aborts (reverts)")
	}
	if res.Elections != 0 {
		t.Fatalf("unnecessary elections: %d", res.Elections)
	}
	if res.OTS.Total() != 0 {
		t.Fatalf("OTS %.1fs, want 0", res.OTS.Total().Seconds())
	}
}

func TestFixKKeepsConstantRatio(t *testing.T) {
	sweep := netsim.LossSteps(netsim.Params{RTT: 200 * time.Millisecond, Jitter: 2 * time.Millisecond},
		30*time.Second, 0, 0.2)
	fix := RunFluctuation(Options{N: 5, Seed: 41, Variant: VariantFixK(10), Profile: sweep}, time.Minute, 5*time.Second)
	dyn := RunFluctuation(Options{N: 5, Seed: 41, Variant: VariantDynatune(dynatune.Options{}), Profile: sweep}, time.Minute, 5*time.Second)
	// Fix-K: h stays ≈Et/10 regardless of loss.
	early := fix.LeaderHMs.MeanBetween(10*time.Second, 25*time.Second)
	late := fix.LeaderHMs.MeanBetween(45*time.Second, 60*time.Second)
	if early <= 0 || late <= 0 {
		t.Fatal("Fix-K h series empty")
	}
	if diff := late - early; diff > early/3 || diff < -early/3 {
		t.Fatalf("Fix-K h moved with loss: %0.f → %0.f", early, late)
	}
	// Dynatune: h shrinks when loss appears.
	dEarly := dyn.LeaderHMs.MeanBetween(10*time.Second, 25*time.Second)
	dLate := dyn.LeaderHMs.MeanBetween(45*time.Second, 60*time.Second)
	if dLate >= dEarly*0.7 {
		t.Fatalf("Dynatune h did not shrink under loss: %.0f → %.0f", dEarly, dLate)
	}
}

func TestThroughputRampSaturates(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 4000, StepRPS: 4000, StepDuration: 2 * time.Second, Steps: 5}
	pts := RunThroughputRamp(Options{N: 5, Seed: 43, Variant: VariantRaft(), Profile: stableNet(100)}, ramp, 1)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Low load keeps up with offered.
	if pts[0].ThroughputRS < 3500 {
		t.Fatalf("thr at 4k offered = %.0f", pts[0].ThroughputRS)
	}
	// Top of the ramp (20k) must be capped by capacity (≈13.5k).
	peak := PeakThroughput(pts)
	if peak < 10000 || peak > 16000 {
		t.Fatalf("peak = %.0f, want ≈13.5k", peak)
	}
	// Latency must blow up past saturation.
	if pts[4].LatencyMs < 2*pts[0].LatencyMs {
		t.Fatalf("no saturation signal: lat %v → %v", pts[0].LatencyMs, pts[4].LatencyMs)
	}
}

func TestThroughputLatencyFloorIsRTTBound(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 500, StepRPS: 0, StepDuration: 2 * time.Second, Steps: 1}
	pts := RunThroughputRamp(Options{N: 5, Seed: 45, Variant: VariantRaft(), Profile: stableNet(100)}, ramp, 1)
	// Client RTT 100ms + replication RTT 100ms ≈ 200ms floor.
	if pts[0].LatencyMs < 190 || pts[0].LatencyMs > 260 {
		t.Fatalf("latency floor = %.1fms, want ≈200ms", pts[0].LatencyMs)
	}
}

func TestDynatunePeakBelowRaft(t *testing.T) {
	// Miniature Fig-5 headline: Dynatune peak ≈6% below Raft.
	ramp := workload.Ramp{StartRPS: 13000, StepRPS: 1500, StepDuration: 2 * time.Second, Steps: 3}
	raftPts := RunThroughputRamp(Options{N: 5, Seed: 47, Variant: VariantRaft(), Profile: stableNet(100)}, ramp, 1)
	dynPts := RunThroughputRamp(Options{N: 5, Seed: 47, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)}, ramp, 1)
	rp, dp := PeakThroughput(raftPts), PeakThroughput(dynPts)
	if dp >= rp {
		t.Fatalf("dynatune peak %.0f not below raft %.0f", dp, rp)
	}
	drop := (rp - dp) / rp
	if drop < 0.02 || drop > 0.15 {
		t.Fatalf("peak drop %.1f%%, want ≈6%%", drop*100)
	}
}

func TestLoadGenQueuesWithoutLeader(t *testing.T) {
	c := New(Options{N: 3, Seed: 49, Variant: VariantRaft(), Profile: stableNet(20)})
	ramp := workload.Ramp{StartRPS: 100, StepRPS: 0, StepDuration: time.Second, Steps: 1}
	lg := NewLoadGen(c, ramp, 20*time.Millisecond)
	// Start the generator before any leader exists: requests must queue,
	// then drain once a leader appears.
	c.Start()
	lg.Start()
	c.Run(8 * time.Second)
	if lg.ProposeErrors() > 0 {
		t.Fatalf("propose errors: %d", lg.ProposeErrors())
	}
	// The ramp window closed before the leader existed, so completions
	// fall outside the measured steps; the requests themselves must still
	// have been replicated and applied once a leader emerged.
	if got := c.Store(1).Applies(); got < 80 {
		t.Fatalf("only %d requests applied", got)
	}
	if lg.Inflight() != 0 {
		t.Fatalf("%d requests stuck in flight", lg.Inflight())
	}
}

func TestPartitionFailureMode(t *testing.T) {
	res := RunElectionTrialsWithFailure(Options{
		N: 5, Seed: 51, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100),
	}, 10, 4*time.Second, FailPartition)
	if len(res.OTSMs) < 8 {
		t.Fatalf("only %d/%d partition trials succeeded", len(res.OTSMs), res.Trials)
	}
	det, ots := res.Summary()
	// Follower-side detection is the same mechanism as under pause.
	if det.Mean <= 0 || det.Mean > 600 {
		t.Fatalf("partition detection mean %.0fms implausible", det.Mean)
	}
	if ots.Mean <= det.Mean {
		t.Fatalf("OTS %.0f ≤ detection %.0f", ots.Mean, det.Mean)
	}
}

func TestPartitionedLeaderAbdicates(t *testing.T) {
	c := New(Options{N: 5, Seed: 53, Variant: VariantRaft(), Profile: stableNet(50)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	c.Network().PartitionNode(int(lead.ID()-1), true)
	c.Run(5 * time.Second)
	if lead.State() == raft.StateLeader {
		t.Fatal("isolated leader kept leading past check-quorum")
	}
	if nl := c.Leader(); nl == nil || nl.ID() == lead.ID() {
		t.Fatal("majority side did not elect")
	}
	// Heal: no split brain, single leader at highest term.
	c.Network().PartitionNode(int(lead.ID()-1), false)
	c.Run(5 * time.Second)
	leaders := 0
	for id := raft.ID(1); id <= 5; id++ {
		if c.Node(id).State() == raft.StateLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders after heal", leaders)
	}
}

func TestDynatuneExtClusterWorks(t *testing.T) {
	res := RunElectionTrials(Options{
		N: 5, Seed: 55, Variant: VariantDynatuneExt(dynatune.Options{}), Profile: stableNet(100),
	}, 10, 4*time.Second)
	if len(res.OTSMs) < 8 {
		t.Fatalf("Dynatune-Ext trials: %d ok", len(res.OTSMs))
	}
	det, _ := res.Summary()
	if det.Mean > 400 {
		t.Fatalf("Dynatune-Ext detection %.0fms — extensions broke tuning", det.Mean)
	}
}

func TestCostModelPricing(t *testing.T) {
	cm := DefaultCostModel()
	hb := raft.Message{Type: raft.MsgHeartbeat}
	if cm.sendCost(hb, true) <= cm.sendCost(hb, false) {
		t.Fatal("tuned heartbeat send not more expensive")
	}
	app := raft.Message{Type: raft.MsgApp, Entries: make([]raft.Entry, 10)}
	if cm.sendCost(app, false) <= cm.sendCost(raft.Message{Type: raft.MsgApp}, false) {
		t.Fatal("per-entry cost missing")
	}
	if cm.recvCost(app, false) <= cm.recvCost(raft.Message{Type: raft.MsgApp}, false) {
		t.Fatal("per-entry recv cost missing")
	}
	// Responses are priced on receive only.
	if cm.sendCost(raft.Message{Type: raft.MsgHeartbeatResp}, true) != 0 {
		t.Fatal("response send should be free (folded into recv)")
	}
	if cm.recvCost(raft.Message{Type: raft.MsgVote}, false) != cm.VoteProc {
		t.Fatal("vote pricing")
	}
}

func TestRunTransferTrials(t *testing.T) {
	res := RunTransferTrials(Options{N: 5, Seed: 59, Variant: VariantRaft(), Profile: stableNet(100)}, 10, time.Second)
	if len(res.HandoverMs) < 8 {
		t.Fatalf("only %d/%d transfers completed", len(res.HandoverMs), res.Trials)
	}
	mean := 0.0
	for _, h := range res.HandoverMs {
		mean += h
	}
	mean /= float64(len(res.HandoverMs))
	// Handover ≈ 1.5 RTT (150ms) — an order of magnitude below the
	// 1400ms crash OTS at these settings.
	if mean > 500 {
		t.Fatalf("mean handover %.0fms, want ≈150ms", mean)
	}
}
