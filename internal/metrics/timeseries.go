package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TimeSeries records (time, value) points sampled during a run; Figs. 6
// and 7 are rendered from these.
type TimeSeries struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{Name: name}
}

// Add appends a point. Points should be added in time order.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// At returns the last value recorded at or before t (0, false if none).
func (ts *TimeSeries) At(t time.Duration) (float64, bool) {
	i := sort.Search(len(ts.Times), func(i int) bool { return ts.Times[i] > t })
	if i == 0 {
		return 0, false
	}
	return ts.Values[i-1], true
}

// Max returns the maximum value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	var m float64
	for i, v := range ts.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 when empty).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	var s float64
	for _, v := range ts.Values {
		s += v
	}
	return s / float64(len(ts.Values))
}

// MeanBetween returns the mean of values with from ≤ t < to (0 if none).
func (ts *TimeSeries) MeanBetween(from, to time.Duration) float64 {
	var s float64
	n := 0
	for i, t := range ts.Times {
		if t >= from && t < to {
			s += ts.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Downsample returns a copy with at most n points (uniform stride),
// preserving the first and last points.
func (ts *TimeSeries) Downsample(n int) *TimeSeries {
	if n <= 0 || ts.Len() <= n {
		return ts
	}
	out := NewTimeSeries(ts.Name)
	for i := 0; i < n; i++ {
		idx := i * (ts.Len() - 1) / (n - 1)
		out.Add(ts.Times[idx], ts.Values[idx])
	}
	return out
}

// Intervals represents disjoint [start, end) spans of virtual time, used
// for the OTS shading in Fig. 6 (periods with no elected leader).
type Intervals struct {
	Starts []time.Duration
	Ends   []time.Duration
}

// Add appends a span. Spans should be added in order and non-overlapping.
func (iv *Intervals) Add(start, end time.Duration) {
	if end < start {
		start, end = end, start
	}
	iv.Starts = append(iv.Starts, start)
	iv.Ends = append(iv.Ends, end)
}

// Total returns the summed length of all spans.
func (iv *Intervals) Total() time.Duration {
	var t time.Duration
	for i := range iv.Starts {
		t += iv.Ends[i] - iv.Starts[i]
	}
	return t
}

// Count returns the number of spans.
func (iv *Intervals) Count() int { return len(iv.Starts) }

// Contains reports whether t falls inside any span.
func (iv *Intervals) Contains(t time.Duration) bool {
	for i := range iv.Starts {
		if t >= iv.Starts[i] && t < iv.Ends[i] {
			return true
		}
	}
	return false
}

// TotalBetween returns the overlap between the spans and [from, to).
func (iv *Intervals) TotalBetween(from, to time.Duration) time.Duration {
	var t time.Duration
	for i := range iv.Starts {
		s, e := iv.Starts[i], iv.Ends[i]
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			t += e - s
		}
	}
	return t
}

// RenderSeries renders one or more time series as aligned text columns
// (time, one column per series), downsampled to rows lines — the textual
// stand-in for the paper's line plots.
func RenderSeries(rows int, series ...*TimeSeries) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("time(s)")
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	base := series[0].Downsample(rows)
	for i := 0; i < base.Len(); i++ {
		t := base.Times[i]
		fmt.Fprintf(&b, "%.1f", t.Seconds())
		for _, s := range series {
			if v, ok := s.At(t); ok {
				fmt.Fprintf(&b, "\t%.1f", v)
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
