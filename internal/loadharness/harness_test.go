package loadharness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"dynatune/internal/wireclient"
)

// One tiny fleet, a handful of connections, one short stage: the smoke
// test proves the whole path — fleet boot, preload, open-loop generation,
// latency recording — without the load of a real run.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a raft fleet")
	}
	fleet, err := StartFleet(FleetConfig{Groups: 1, NodesPerGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()

	res, err := Run(Options{
		Addr:          fleet.BinAddr,
		Conns:         8,
		StartConns:    8,
		Stages:        1,
		StageDuration: 2 * time.Second,
		Rate:          200,
		WriteFrac:     0.2,
		Keys:          64,
		ValueBytes:    32,
		SLA:           time.Second,
		Preload:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 1 {
		t.Fatalf("stages: %d", len(res.Stages))
	}
	st := res.Stages[0]
	if st.Conns != 8 {
		t.Fatalf("conns: %d", st.Conns)
	}
	if st.Issued == 0 || st.OK == 0 {
		t.Fatalf("no traffic flowed: issued=%d ok=%d", st.Issued, st.OK)
	}
	if st.Errors > st.Issued/10 {
		t.Fatalf("error rate too high: %d/%d", st.Errors, st.Issued)
	}
	if st.P99Ms <= 0 || st.P50Ms <= 0 {
		t.Fatalf("quantiles not recorded: p50=%.2f p99=%.2f", st.P50Ms, st.P99Ms)
	}
	if st.P999Ms < st.P99Ms || st.P99Ms < st.P50Ms {
		t.Fatalf("quantiles not monotone: p50=%.2f p99=%.2f p999=%.2f", st.P50Ms, st.P99Ms, st.P999Ms)
	}
	if st.SLAFrac <= 0 || st.SLAFrac > 1 {
		t.Fatalf("sla fraction out of range: %f", st.SLAFrac)
	}
}

// TestHelperLoadWorker is not a test: it is the worker half of
// TestShardedRunMergesWorkers, re-exec'd from the test binary with
// -test.run pinning it and the env var arming it. os.Exit keeps the
// framework's trailing "PASS" off the JSON protocol stream.
func TestHelperLoadWorker(t *testing.T) {
	if os.Getenv("LH_HELPER_WORKER") != "1" {
		t.Skip("helper process for TestShardedRunMergesWorkers")
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// A descriptor budget too small for the conn count must shard the run
// across worker processes and still produce one coherent merged report
// per stage.
func TestShardedRunMergesWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a raft fleet and worker processes")
	}
	fleet, err := StartFleet(FleetConfig{Groups: 1, NodesPerGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()

	res, err := Run(Options{
		Addr:          fleet.BinAddr,
		FleetBins:     fleet.NodeBins,
		Conns:         48,
		StartConns:    24,
		Stages:        2,
		StageDuration: 1500 * time.Millisecond,
		Rate:          300,
		WriteFrac:     0.2,
		Keys:          128,
		ValueBytes:    32,
		SLA:           time.Second,
		Preload:       true,
		// 16 conns per worker: 48 conns must fan out to 3 processes.
		MaxFDs:    workerFDOverhead + 2*16,
		WorkerCmd: []string{os.Args[0], "-test.run=TestHelperLoadWorker$"},
		WorkerEnv: []string{"LH_HELPER_WORKER=1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages: %d", len(res.Stages))
	}
	if res.Stages[0].Conns != 24 || res.Peak.Conns != 48 {
		t.Fatalf("merged conn counts wrong: stage0=%d peak=%d", res.Stages[0].Conns, res.Peak.Conns)
	}
	for i, st := range res.Stages {
		if st.Issued == 0 || st.OK == 0 {
			t.Fatalf("stage %d: no traffic flowed: issued=%d ok=%d", i, st.Issued, st.OK)
		}
		if st.Errors > st.Issued/10 {
			t.Fatalf("stage %d: error rate too high: %d/%d", i, st.Errors, st.Issued)
		}
		if st.P99Ms <= 0 || st.P99Ms < st.P50Ms {
			t.Fatalf("stage %d: merged quantiles wrong: p50=%.2f p99=%.2f", i, st.P50Ms, st.P99Ms)
		}
		if st.SLAFrac <= 0 || st.SLAFrac > 1 {
			t.Fatalf("stage %d: sla fraction out of range: %f", i, st.SLAFrac)
		}
	}
}

// The preloaded keys must be readable through the front: a quick
// correctness check that routing + preload agree.
func TestFleetServesPreloadedKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a raft fleet")
	}
	fleet, err := StartFleet(FleetConfig{Groups: 2, NodesPerGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()

	o := Options{Addr: fleet.BinAddr, Keys: 16, ValueBytes: 8, Conns: 1, Preload: true}
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	if err := preload(o); err != nil {
		t.Fatalf("preload: %v", err)
	}
	conns, err := growConns(nil, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 16; i++ {
		req := wireclient.Request{Op: wireclient.OpGet, Key: fmt.Sprintf("lh-%06d", i)}
		resp, err := conns[0].Call(&req)
		if err != nil {
			t.Fatalf("get key %d: %v", i, err)
		}
		if resp.Status != wireclient.StatusOK {
			t.Fatalf("key %d: status %s", i, resp.Status)
		}
		if len(resp.Value) != o.ValueBytes {
			t.Fatalf("key %d: %d-byte value, want %d", i, len(resp.Value), o.ValueBytes)
		}
	}
}
