package shard

import (
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/kv"
	"dynatune/internal/metrics"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
	"dynatune/internal/workload"
)

// LoadGen drives keyed open-loop traffic against a sharded cluster: one
// aggregate arrival ramp (as in §IV-B2) whose requests each carry a key
// drawn from a KeySampler, routed through the Router and batched into
// per-group leader proposals every flush interval. Latency is measured
// per request from arrival to commit-and-reply on the owning group's
// leader.
type LoadGen struct {
	s         *Cluster
	ramp      workload.Ramp
	gen       *workload.Generator
	keys      *workload.KeySampler
	clientRTT time.Duration
	flushEach time.Duration

	// queue holds arrivals accepted but not yet routed (waiting for the
	// next flush).
	queue []arrival
	// parked holds, per group, arrivals already routed to a group that
	// had no leader at flush time. Keeping them here instead of back on
	// queue means an election window costs one leader check per tick, not
	// a re-scan and re-hash of every delayed arrival (quadratic at the
	// benchmark's offered rates).
	parked [][]arrival
	// fenced holds arrivals whose keys a live migration is moving: they
	// wait out the fence and re-route at cutover (by then under the new
	// epoch's ring). Their queueing delay is the mid-move latency the
	// rebalance scenarios measure.
	fenced []arrival
	// inflight tracks, per group, proposed-but-uncommitted requests with
	// the shared term-checked tracker (see cluster.Inflight).
	inflight []*cluster.Inflight

	perStep []stepAgg
	// phaseLats buckets every latency sample by rebalance phase: before
	// the first move, during a move, after the last.
	phaseLats [3][]float64

	// batchScratch is flush's per-group fan-out table, reused across
	// flushes. Only the outer array is recycled: the inner slices are
	// handed to ProposeParked, which may retain them as parked batches.
	batchScratch [][]arrival

	epoch         int // router epoch the parked assignments were made under
	proposeErrors uint64
	seq           uint64
	seqValues     bool
	// onComplete, when set, receives every completion's key and client
	// sequence at the ack point — the invariant checker's feed.
	onComplete func(key string, seq uint64)
	base       time.Duration // virtual time of ramp t=0
	// retiredLost / retiredInflight bank the counters of trackers whose
	// group slot was reused by a later AddGroupLive.
	retiredLost     uint64
	retiredInflight int
}

type arrival struct {
	at  time.Duration
	key string
}

type stepAgg struct {
	completed int
	lats      []float64 // per-request latency, ms
}

// LoadOptions tune a sharded load generator.
type LoadOptions struct {
	// Keys is the keyspace size (default 4096).
	Keys int
	// Zipf, when non-zero, draws keys Zipf-distributed with this exponent
	// instead of uniformly (hot-key skew). The exponent must exceed 1 (the
	// standard library's parameterization); values in (0,1] are rejected
	// rather than silently falling back to uniform.
	Zipf float64
	// ClientRTT is the client↔leader round trip added to every latency
	// (default 100ms, as in the single-group generator usage).
	ClientRTT time.Duration
	// SeqValues makes every write carry its client sequence as the value
	// (kv.SeqValue) instead of the constant placeholder, so reads can be
	// compared for freshness. The invariant suite requires it; default off
	// keeps existing scenario output byte-identical.
	SeqValues bool
}

// NewLoadGen attaches a keyed load generator to a not-yet-started sharded
// cluster.
func NewLoadGen(s *Cluster, ramp workload.Ramp, opts LoadOptions) *LoadGen {
	if opts.Keys == 0 {
		opts.Keys = 4096
	}
	if opts.ClientRTT == 0 {
		opts.ClientRTT = 100 * time.Millisecond
	}
	gen, err := workload.NewGenerator(ramp, s.eng.Rand())
	if err != nil {
		panic(err)
	}
	var keys *workload.KeySampler
	if opts.Zipf != 0 {
		keys, err = workload.NewZipfKeySampler(opts.Keys, opts.Zipf, s.eng.Rand())
	} else {
		keys, err = workload.NewKeySampler(opts.Keys, s.eng.Rand())
	}
	if err != nil {
		panic(err)
	}
	lg := &LoadGen{
		s:         s,
		ramp:      ramp,
		gen:       gen,
		keys:      keys,
		clientRTT: opts.ClientRTT,
		seqValues: opts.SeqValues,
		flushEach: time.Millisecond,
		parked:    make([][]arrival, s.Groups()),
		inflight:  make([]*cluster.Inflight, s.Groups()),
		perStep:   make([]stepAgg, ramp.Steps),
	}
	for g := range lg.inflight {
		lg.inflight[g] = cluster.NewInflight()
		g := GroupID(g)
		s.Group(g).SetOnApply(func(node raft.ID, ents []raft.Entry) {
			lg.onApply(g, node, ents)
		})
	}
	// Follow the group lifecycle: a group booted mid-run gets its own
	// tracker and apply hook (before it starts), and an epoch flip marks
	// every parked assignment stale so the next flush re-routes it.
	s.OnGroupAdded(func(g GroupID) {
		for len(lg.parked) <= int(g) {
			lg.parked = append(lg.parked, nil)
		}
		for len(lg.inflight) <= int(g) {
			lg.inflight = append(lg.inflight, nil)
		}
		lg.parked[g] = nil
		// A reused slot's old tracker belongs to the retired group: bank
		// its counters before replacing it, or the run's Lost/Inflight
		// totals silently shrink — defeating the zero-lost-writes witness.
		if old := lg.inflight[g]; old != nil {
			lg.retiredLost += old.Lost()
			lg.retiredInflight += old.Len()
		}
		lg.inflight[g] = cluster.NewInflight()
		s.Group(g).SetOnApply(func(node raft.ID, ents []raft.Entry) {
			lg.onApply(g, node, ents)
		})
	})
	return lg
}

// Start begins the flush loop at the current virtual time; the ramp's t=0
// is "now".
func (lg *LoadGen) Start() {
	base := lg.s.eng.Now()
	lg.base = base
	end := base + lg.ramp.Duration() + 10*time.Second
	cluster.RunPump(lg.s.eng, end, lg.flushEach,
		func() { lg.flush(base) },
		func() { lg.s.CompactAll(4096) })
}

// flush moves due arrivals into per-group leader proposal batches.
func (lg *LoadGen) flush(base time.Duration) {
	now := lg.s.eng.Now() - base
	for {
		at, ok := lg.gen.Next()
		if !ok {
			break
		}
		lg.queue = append(lg.queue, arrival{at: at, key: lg.keys.Next()})
		if at > now {
			break // overshoot arrival buffered for a later flush
		}
	}
	due, rest := cluster.SplitDue(lg.queue, now, func(a arrival) time.Duration { return a.at })
	lg.queue = rest
	// An epoch flip invalidates every parked group assignment (the group
	// a parked arrival waited for may no longer own its key, or may no
	// longer exist): reclaim them for re-routing ahead of the fresh
	// arrivals. Flips are rare — once per migration — so the re-hash is
	// paid only then.
	if e := lg.s.Epoch(); e != lg.epoch {
		lg.epoch = e
		var reclaimed []arrival
		for g := range lg.parked {
			reclaimed = append(reclaimed, lg.parked[g]...)
			lg.parked[g] = nil
		}
		due = append(reclaimed, due...)
	}
	// Fenced arrivals whose fence lifted re-enter routing, ahead of the
	// fresh batch (they arrived earlier).
	if len(lg.fenced) > 0 && !lg.s.Fenced(lg.fenced[0].key) {
		still := lg.fenced[:0:0]
		freed := make([]arrival, 0, len(lg.fenced))
		for _, a := range lg.fenced {
			if lg.s.Fenced(a.key) {
				still = append(still, a)
			} else {
				freed = append(freed, a)
			}
		}
		lg.fenced = still
		due = append(freed, due...)
	}
	// Fan new arrivals out across groups (group order is deterministic);
	// each key is hashed exactly once, even if its group is mid-election —
	// unless a migration fences it, in which case it waits for cutover.
	if n := lg.s.GroupSlots(); cap(lg.batchScratch) < n {
		lg.batchScratch = make([][]arrival, n)
	} else {
		lg.batchScratch = lg.batchScratch[:n]
		for i := range lg.batchScratch {
			lg.batchScratch[i] = nil
		}
	}
	batches := lg.batchScratch
	for _, a := range due {
		if lg.s.Fenced(a.key) {
			lg.fenced = append(lg.fenced, a)
			continue
		}
		g := lg.s.router.Route(a.key)
		batches[g] = append(batches[g], a)
	}
	for g := range batches {
		lg.parked[g] = cluster.ProposeParked(lg.s.Group(GroupID(g)), lg.inflight[g], lg.parked[g], batches[g],
			func(a arrival) time.Duration { return a.at },
			func(a arrival) []byte {
				lg.seq++
				val := []byte("v")
				if lg.seqValues {
					val = kv.SeqValue(lg.seq)
				}
				return kv.Encode(kv.Command{Op: kv.OpPut, Client: 1, Seq: lg.seq, Key: a.key, Value: val})
			},
			&lg.proposeErrors)
	}
}

// onApply observes one group's applied entries and completes requests
// through the shared cluster.Inflight.ResolveApplied gate (see its doc
// for the semantics).
func (lg *LoadGen) onApply(g GroupID, node raft.ID, ents []raft.Entry) {
	now := lg.s.eng.Now() - lg.base
	// Phase of this apply instant: during any live move → mid; after the
	// first completed move → post; otherwise pre.
	phase := 0
	if lg.s.Rebalancing() {
		phase = 1
	} else if len(lg.s.rebalances) > 0 {
		phase = 2
	}
	lg.inflight[g].ResolveAppliedEntries(lg.s.Group(g).ApplyGate(), ents, func(e raft.Entry, at time.Duration) {
		if lg.onComplete != nil {
			if cmd, err := kv.Decode(e.Data); err == nil {
				lg.onComplete(cmd.Key, cmd.Seq)
			}
		}
		step := lg.ramp.StepOf(now)
		if step < 0 || step >= len(lg.perStep) {
			return
		}
		lat := (now - at) + lg.clientRTT
		lg.perStep[step].completed++
		latMs := float64(lat) / float64(time.Millisecond)
		lg.perStep[step].lats = append(lg.perStep[step].lats, latMs)
		lg.phaseLats[phase] = append(lg.phaseLats[phase], latMs)
	})
}

// SetOnComplete registers an ack observer: every completed request's key
// and client sequence, at the instant the owning group's leader applied
// it (the same gate the latency sample uses). Completions outside the
// measured ramp window still feed it — the invariant checker's acked-set
// must cover the drain tail, not just the scored steps.
func (lg *LoadGen) SetOnComplete(fn func(key string, seq uint64)) { lg.onComplete = fn }

// PhaseLatencies summarizes the run's latencies bucketed by rebalance
// phase — the scenario engine's rebalance measurement hook. With no
// rebalance in the run everything lands in pre.
func (lg *LoadGen) PhaseLatencies() (pre, mid, post scenario.PhaseLatency) {
	sum := func(lats []float64) scenario.PhaseLatency {
		s := metrics.Summarize(lats)
		return scenario.PhaseLatency{Completed: len(lats), P50Ms: s.P50, P99Ms: s.P99}
	}
	return sum(lg.phaseLats[0]), sum(lg.phaseLats[1]), sum(lg.phaseLats[2])
}

// StepResult is the aggregated outcome for one ramp step across all
// groups (the engine's shared step type).
type StepResult = scenario.Step

// Results returns per-step aggregates. Call after the ramp (plus drain)
// has run.
func (lg *LoadGen) Results() []StepResult {
	out := make([]StepResult, len(lg.perStep))
	for i := range lg.perStep {
		rps, _ := lg.ramp.RPSAt(time.Duration(i)*lg.ramp.StepDuration + 1)
		// Summarize sorts once and feeds mean and tail together (the old
		// code paired a Welford pass with a separate copy+sort Quantile).
		s := metrics.Summarize(lg.perStep[i].lats)
		out[i] = StepResult{
			OfferedRPS:   rps,
			ThroughputRS: float64(lg.perStep[i].completed) / lg.ramp.StepDuration.Seconds(),
			LatencyMs:    s.Mean,
			P99Ms:        s.P99,
			Completed:    lg.perStep[i].completed,
		}
	}
	return out
}

// TotalCompleted returns the number of requests committed during the
// ramp.
func (lg *LoadGen) TotalCompleted() int {
	total := 0
	for i := range lg.perStep {
		total += lg.perStep[i].completed
	}
	return total
}

// P99Ms returns the tail latency over the whole ramp.
func (lg *LoadGen) P99Ms() float64 {
	n := 0
	for i := range lg.perStep {
		n += len(lg.perStep[i].lats)
	}
	all := make([]float64, 0, n)
	for i := range lg.perStep {
		all = append(all, lg.perStep[i].lats...)
	}
	return metrics.Quantile(all, 0.99)
}

// ProposeErrors returns how many requests failed to propose.
func (lg *LoadGen) ProposeErrors() uint64 { return lg.proposeErrors }

// Lost returns how many proposed requests were overwritten by a newer
// leader before committing (client would retry; the testbed just counts),
// summed over groups — including trackers retired with their group.
func (lg *LoadGen) Lost() uint64 {
	n := lg.retiredLost
	for _, f := range lg.inflight {
		n += f.Lost()
	}
	return n
}

// Inflight returns the number of requests proposed but not yet committed,
// summed over groups — including trackers retired with their group.
func (lg *LoadGen) Inflight() int {
	n := lg.retiredInflight
	for _, f := range lg.inflight {
		n += f.Len()
	}
	return n
}

// Pending returns the number of arrivals accepted but never proposed —
// still queued, parked at a group whose election outlasted the run, or
// fenced by a migration that outlasted it. Without it, arrivals stuck
// behind a leaderless group would vanish from every counter and read as
// capacity loss.
func (lg *LoadGen) Pending() int {
	n := len(lg.queue) + len(lg.fenced)
	for _, p := range lg.parked {
		n += len(p)
	}
	return n
}
