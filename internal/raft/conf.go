package raft

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ConfChangeOp enumerates single-step membership operations (etcd's
// ConfChangeType). One change is in flight at a time — the pending-change
// guard below — which keeps any old/new quorum overlap safe without joint
// consensus.
type ConfChangeOp uint8

const (
	// ConfAddVoter adds a full voting member (or promotes a learner).
	ConfAddVoter ConfChangeOp = iota + 1
	// ConfAddLearner adds a non-voting member that receives the log but
	// does not count toward quorum — the safe way to bring a fresh node up
	// to speed before giving it a vote.
	ConfAddLearner
	// ConfRemoveNode removes a voter or learner. A leader that removes
	// itself steps down once the change is applied.
	ConfRemoveNode
)

func (o ConfChangeOp) String() string {
	switch o {
	case ConfAddVoter:
		return "add-voter"
	case ConfAddLearner:
		return "add-learner"
	case ConfRemoveNode:
		return "remove-node"
	default:
		return fmt.Sprintf("conf-op(%d)", uint8(o))
	}
}

// ConfChange is one membership mutation, carried in an EntryConfChange log
// entry and applied by every node when the entry is applied.
type ConfChange struct {
	Op   ConfChangeOp
	Node ID
}

// EncodeConfChange serializes cc for an EntryConfChange's Data.
func EncodeConfChange(cc ConfChange) []byte {
	buf := make([]byte, 9)
	buf[0] = byte(cc.Op)
	binary.BigEndian.PutUint64(buf[1:], uint64(cc.Node))
	return buf
}

// DecodeConfChange parses a ConfChange encoded by EncodeConfChange.
func DecodeConfChange(b []byte) (ConfChange, error) {
	if len(b) != 9 {
		return ConfChange{}, fmt.Errorf("raft: conf change length %d, want 9", len(b))
	}
	cc := ConfChange{Op: ConfChangeOp(b[0]), Node: ID(binary.BigEndian.Uint64(b[1:]))}
	if cc.Op < ConfAddVoter || cc.Op > ConfRemoveNode {
		return ConfChange{}, fmt.Errorf("raft: bad conf change op %d", b[0])
	}
	if cc.Node == None {
		return ConfChange{}, errors.New("raft: conf change on node 0")
	}
	return cc, nil
}

// ErrPendingConf is returned by ProposeConfChange while an earlier change
// has not been applied yet: overlapping single-step changes can produce
// disjoint quorums, so etcd (and this implementation) serialize them.
var ErrPendingConf = errors.New("raft: a configuration change is already in flight")

// ErrNotMember is returned when a change references a node in a way that
// makes no sense for the current membership.
var ErrNotMember = errors.New("raft: conf change references a non-member")

// ProposeConfChange appends a membership change to the log. Like Propose
// it only works on the leader; unlike Propose at most one change may be
// unapplied at a time.
func (n *Node) ProposeConfChange(cc ConfChange) (uint64, error) {
	if n.state != StateLeader {
		return 0, ErrNotLeader
	}
	if n.transferee != None {
		return 0, ErrTransferring
	}
	if n.pendingConfIndex > n.log.Applied() {
		return 0, ErrPendingConf
	}
	switch cc.Op {
	case ConfAddVoter:
		if n.voters[cc.Node] {
			return 0, fmt.Errorf("%w: %d is already a voter", ErrNotMember, cc.Node)
		}
	case ConfAddLearner:
		if n.voters[cc.Node] || n.learners[cc.Node] {
			return 0, fmt.Errorf("%w: %d is already a member", ErrNotMember, cc.Node)
		}
	case ConfRemoveNode:
		if !n.voters[cc.Node] && !n.learners[cc.Node] {
			return 0, fmt.Errorf("%w: %d is not a member", ErrNotMember, cc.Node)
		}
	default:
		return 0, fmt.Errorf("raft: bad conf change op %d", cc.Op)
	}
	idx := n.log.AppendTyped(n.term, EntryConfChange, EncodeConfChange(cc))
	n.pendingConfIndex = idx
	n.maybeCommit()
	n.broadcastAppend()
	return idx, nil
}

// applyConfChange mutates the membership when an EntryConfChange is
// applied. It is idempotent: replays (snapshot overlap, restart) converge.
func (n *Node) applyConfChange(cc ConfChange) {
	switch cc.Op {
	case ConfAddVoter:
		delete(n.learners, cc.Node)
		n.voters[cc.Node] = true
	case ConfAddLearner:
		if !n.voters[cc.Node] {
			n.learners[cc.Node] = true
		}
	case ConfRemoveNode:
		delete(n.voters, cc.Node)
		delete(n.learners, cc.Node)
	}
	n.rebuildMembership()
	n.trace(EventConfChange)

	if cc.Node == n.id && cc.Op == ConfRemoveNode {
		// We are out: stop participating. A removed leader abdicates after
		// the change commits (which it has, or we would not be applying it).
		n.removed = true
		if n.state == StateLeader {
			n.becomeFollower(n.term, None)
		}
		return
	}
	if n.state == StateLeader {
		switch cc.Op {
		case ConfAddVoter, ConfAddLearner:
			if cc.Node != n.id {
				if _, ok := n.prs[cc.Node]; !ok {
					n.prs[cc.Node] = &progress{next: n.log.LastIndex() + 1}
					n.sendAppend(cc.Node)
					n.sendHeartbeat(cc.Node)
					if !n.cfg.ConsolidatedHeartbeats {
						now := n.cfg.Runtime.Now()
						n.cfg.Runtime.SetTimer(TimerHeartbeat, cc.Node, now+n.cfg.Tuner.HeartbeatInterval(cc.Node))
					}
				}
			}
		case ConfRemoveNode:
			// One final append delivers the commit index covering the
			// removal entry, so the victim learns it is out and goes quiet
			// instead of campaigning against the survivors.
			n.sendAppend(cc.Node)
			delete(n.prs, cc.Node)
			n.cfg.Runtime.CancelTimer(TimerHeartbeat, cc.Node)
			// The quorum may have shrunk: entries waiting on the removed
			// node's ack can be committable now.
			if n.maybeCommit() {
				n.broadcastAppend()
			}
		}
	}
}

// adoptMembership replaces the whole membership (snapshot install or
// restore: the snapshot's ConfState supersedes local knowledge).
func (n *Node) adoptMembership(voters, learners []ID) {
	n.voters = make(map[ID]bool, len(voters))
	n.learners = make(map[ID]bool, len(learners))
	for _, id := range voters {
		n.voters[id] = true
	}
	for _, id := range learners {
		n.learners[id] = true
	}
	n.rebuildMembership()
	n.removed = !n.voters[n.id] && !n.learners[n.id]
}

// rebuildMembership recomputes the caches derived from the voter/learner
// sets: the remote-member list and the majority size.
func (n *Node) rebuildMembership() {
	n.peers = n.peers[:0]
	for id := range n.voters {
		if id != n.id {
			n.peers = append(n.peers, id)
		}
	}
	for id := range n.learners {
		if id != n.id {
			n.peers = append(n.peers, id)
		}
	}
	// Deterministic order keeps simulations reproducible (map iteration is
	// randomized).
	for i := 1; i < len(n.peers); i++ {
		for j := i; j > 0 && n.peers[j] < n.peers[j-1]; j-- {
			n.peers[j], n.peers[j-1] = n.peers[j-1], n.peers[j]
		}
	}
	n.quorum = len(n.voters)/2 + 1
}

// isVoter reports whether the node itself currently holds a vote.
func (n *Node) isVoter() bool { return n.voters[n.id] }

// Voters returns the current voting membership (sorted).
func (n *Node) Voters() []ID { return sortedIDs(n.voters) }

// Learners returns the current non-voting membership (sorted).
func (n *Node) Learners() []ID { return sortedIDs(n.learners) }

// IsLearner reports whether the node itself is currently a learner.
func (n *Node) IsLearner() bool { return n.learners[n.id] }

// Removed reports whether the node has been removed from the cluster.
func (n *Node) Removed() bool { return n.removed }

func sortedIDs(set map[ID]bool) []ID {
	out := make([]ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
