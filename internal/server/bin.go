package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/wire"
	"dynatune/internal/wireclient"
)

// The binary API: the hot serving path beside the HTTP one. One TCP
// connection carries many concurrent requests (demuxed by request id);
// each connection runs a reader/writer goroutine pair, a bounded inflight
// semaphore provides backpressure, and responses batch naturally — the
// writer flushes only when its queue runs dry, so a burst of completions
// leaves in one syscall.

const (
	// binMaxInflight bounds concurrently executing requests per
	// connection; the reader stops decoding once the budget is spent, so
	// TCP flow control pushes back on the client.
	binMaxInflight = 256
	// binDrainTimeout bounds how long shutdown waits for in-flight
	// requests before tearing connections down.
	binDrainTimeout = 5 * time.Second
)

// binHandler executes one request and returns its response (the caller
// stamps the response ID). It may block; it runs on its own goroutine.
type binHandler func(req wireclient.Request) wireclient.Response

// binServer accepts binary-protocol connections and serves them through
// a handler. It is shared by the node API and the sharded BinFront.
type binServer struct {
	ln     net.Listener
	handle binHandler
	lg     *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

func startBinServer(listen string, handle binHandler, lg *log.Logger) (*binServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("server: bin listen: %w", err)
	}
	b := &binServer{ln: ln, handle: handle, lg: lg, conns: map[net.Conn]struct{}{}}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

func (b *binServer) addr() string { return b.ln.Addr().String() }

func (b *binServer) acceptLoop() {
	defer b.wg.Done()
	for {
		nc, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			nc.Close()
			return
		}
		b.conns[nc] = struct{}{}
		b.mu.Unlock()
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		b.wg.Add(1)
		go b.serveConn(nc)
	}
}

// serveConn runs one connection: the reader decodes requests and spawns
// bounded handler goroutines; completions funnel through out to a writer
// that batches flushes. When the reader exits (EOF, error, or drain
// deadline) it waits for in-flight handlers, closes out, and the writer
// flushes the tail before the connection closes — so a drained shutdown
// answers everything it accepted.
func (b *binServer) serveConn(nc net.Conn) {
	defer b.wg.Done()
	defer func() {
		b.mu.Lock()
		delete(b.conns, nc)
		b.mu.Unlock()
		nc.Close()
	}()

	out := make(chan wireclient.Response, binMaxInflight)
	sem := make(chan struct{}, binMaxInflight)

	var ww sync.WaitGroup
	ww.Add(1)
	go func() { // writer
		defer ww.Done()
		bw := bufio.NewWriterSize(nc, 64<<10)
		dead := false
		for resp := range out {
			if dead {
				continue // drain so handlers never block on a dead pipe
			}
			buf := wireclient.AppendResponse(wire.GetBuf(512), &resp)
			_, err := bw.Write(buf)
			wire.PutBuf(buf)
			if err == nil && len(out) == 0 {
				err = bw.Flush() // queue dry: ship the batch
			}
			if err != nil {
				dead = true
				nc.Close() // unblock the reader too
			}
		}
		if !dead {
			bw.Flush()
		}
	}()

	var inflight sync.WaitGroup
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			b.logReadErr(err)
			break
		}
		if n > wireclient.MaxFrame {
			b.lg.Printf("bin: oversize %d-byte frame", n)
			break
		}
		buf := wire.GetBuf(int(n))[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			wire.PutBuf(buf)
			b.logReadErr(err)
			break
		}
		req, err := wireclient.DecodeRequest(buf)
		wire.PutBuf(buf)
		if err != nil {
			b.lg.Printf("bin: %v", err)
			break
		}
		sem <- struct{}{} // backpressure: cap concurrent handlers
		inflight.Add(1)
		go func(req wireclient.Request) {
			defer inflight.Done()
			resp := b.handle(req)
			resp.ID = req.ID
			resp.Op = req.Op
			out <- resp
			<-sem
		}(req)
	}
	inflight.Wait()
	close(out)
	ww.Wait()
}

func (b *binServer) logReadErr(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return // clean disconnect or shutdown
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return // drain deadline
	}
	b.lg.Printf("bin: read: %v", err)
}

// close drains gracefully: stop accepting, stop reading new requests
// (via a read deadline in the past), let in-flight requests finish and
// their responses flush, then force-close whatever remains.
func (b *binServer) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.ln.Close()
	for nc := range b.conns {
		nc.SetReadDeadline(time.Unix(1, 0)) // readers unblock, writers drain
	}
	b.mu.Unlock()

	done := make(chan struct{})
	go func() { b.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(binDrainTimeout):
		b.mu.Lock()
		for nc := range b.conns {
			nc.Close()
		}
		b.mu.Unlock()
		<-done
	}
}

// --- node-side binary API ---

// handleBin serves one binary request against this node: puts replicate
// through Propose, gets default to leader lease reads (FlagLocal for a
// local read), multigets ride one lease barrier then read locally.
// Leader-only failures answer StatusNotLeader with this node's best
// leader hint — the in-protocol twin of misdirected()'s X-Raft-Leader.
func (s *Server) handleBin(req wireclient.Request) wireclient.Response {
	resp := wireclient.Response{}
	switch req.Op {
	case wireclient.OpPing:

	case wireclient.OpPut:
		if len(req.Value) > maxValueBytes {
			return binErrf(fmt.Sprintf("value exceeds %d bytes", maxValueBytes))
		}
		err := s.Propose(kv.Command{Op: kv.OpPut, Key: req.Key, Value: req.Value})
		if errors.Is(err, raft.ErrNotLeader) {
			return s.binMisdirected()
		}
		if err != nil {
			return binErrf(err.Error())
		}

	case wireclient.OpGet:
		var v []byte
		var ok bool
		if req.Flags&wireclient.FlagLocal != 0 {
			v, ok = s.Get(req.Key)
		} else {
			var err error
			v, ok, err = s.GetLinearizable(req.Key, true)
			if isNotLeaderErr(err) {
				return s.binMisdirected()
			}
			if err != nil {
				return binErrf(err.Error())
			}
		}
		if !ok {
			resp.Status = wireclient.StatusNotFound
			return resp
		}
		resp.Value = v

	case wireclient.OpMultiGet:
		if len(req.Keys) > maxMultiGetKeys {
			return binErrf(fmt.Sprintf("at most %d keys per multiget", maxMultiGetKeys))
		}
		// One lease barrier covers every key read after it: the reads are
		// leader-local at the barrier point, same contract as the HTTP
		// front's per-group lease reads but at 1/K the confirmation cost.
		err := s.readBarrier(true)
		if isNotLeaderErr(err) {
			return s.binMisdirected()
		}
		if err != nil {
			return binErrf(err.Error())
		}
		resp.Multi = make([][]byte, len(req.Keys))
		resp.Found = make([]bool, len(req.Keys))
		for i, k := range req.Keys {
			resp.Multi[i], resp.Found[i] = s.Get(k)
		}

	default:
		return binErrf(fmt.Sprintf("bad op %d", req.Op))
	}
	return resp
}

func isNotLeaderErr(err error) bool {
	return errors.Is(err, raft.ErrNotLeader) || errors.Is(err, raft.ErrNotReady) || errors.Is(err, ErrReadAborted)
}

func (s *Server) binMisdirected() wireclient.Response {
	return wireclient.Response{
		Status: wireclient.StatusNotLeader,
		Leader: uint64(s.Status().Leader),
	}
}

func binErrf(msg string) wireclient.Response {
	return wireclient.Response{Status: wireclient.StatusErr, Err: msg}
}
