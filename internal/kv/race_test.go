package kv

import (
	"fmt"
	"sync"
	"testing"

	"dynatune/internal/raft"
)

// TestStoreConcurrentApplyAndReads drives Apply from one goroutine while
// others hammer every read path. The sharded layer multiplies per-shard
// state machines, each applied from its group's loop while probes read
// concurrently, so this must be race-clean (run under -race in CI).
func TestStoreConcurrentApplyAndReads(t *testing.T) {
	s := NewStore()
	const (
		batches = 200
		perEach = 16
	)
	var wg sync.WaitGroup
	done := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		idx := uint64(0)
		for b := 0; b < batches; b++ {
			ents := make([]raft.Entry, perEach)
			for i := range ents {
				idx++
				ents[i] = raft.Entry{
					Index: idx,
					Type:  raft.EntryNormal,
					Data: Encode(Command{
						Op: OpPut, Client: 1, Seq: idx,
						Key:   fmt.Sprintf("k-%03d", int(idx)%64),
						Value: []byte("v"),
					}),
				}
			}
			s.Apply(ents)
		}
	}()

	readers := []func(){
		func() { s.Get("k-000") },
		func() { s.Len() },
		func() { s.AppliedIndex() },
		func() { s.Applies() },
		func() { s.Dupes() },
		func() { s.Snapshot() },
		func() { s.MarshalSnapshot() },
	}
	for _, read := range readers {
		read := read
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					read()
				}
			}
		}()
	}
	wg.Wait()

	if got := s.AppliedIndex(); got != batches*perEach {
		t.Fatalf("applied index = %d, want %d", got, batches*perEach)
	}
	if got := s.Applies(); got != batches*perEach {
		t.Fatalf("applies = %d, want %d", got, batches*perEach)
	}
	if s.Len() != 64 {
		t.Fatalf("len = %d, want 64", s.Len())
	}
}

// TestStoreConcurrentSnapshotRoundTrip races MarshalSnapshot against
// Apply and checks that a snapshot taken mid-stream restores to a
// consistent store.
func TestStoreConcurrentSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	done := make(chan struct{})
	var snaps [][]byte
	var mu sync.Mutex

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := uint64(1); i <= 2000; i++ {
			s.Apply([]raft.Entry{{
				Index: i, Type: raft.EntryNormal,
				Data: Encode(Command{Op: OpPut, Client: 2, Seq: i, Key: fmt.Sprintf("s-%02d", i%32), Value: []byte("x")}),
			}})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Marshal before checking done so at least one snapshot is taken
		// even if the writer finishes first.
		for {
			b := s.MarshalSnapshot()
			mu.Lock()
			snaps = append(snaps, b)
			mu.Unlock()
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	wg.Wait()

	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	// Every snapshot restores cleanly into a fresh store.
	for _, b := range snaps[:min(len(snaps), 8)] {
		fresh := NewStore()
		if err := fresh.RestoreSnapshot(b, 1); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	last := NewStore()
	if err := last.RestoreSnapshot(s.MarshalSnapshot(), 2000); err != nil {
		t.Fatal(err)
	}
	if !last.Equal(s) {
		t.Fatal("final snapshot does not round-trip")
	}
}
