// Command dynabench regenerates the paper's evaluation figures at full
// scale on the simulated testbed. Each per-figure subcommand is a thin
// front over the scenario registry (internal/scenario): it looks up the
// figure's declarative spec, applies the flag overrides, executes it
// through scenario/bind and prints the measured rows next to the values
// the paper reports. `dynabench scenario` exposes the registry directly —
// named scenarios, JSON spec files, scaling — so new experiments need no
// new subcommand.
//
// Usage:
//
//	dynabench fig4  [-trials 1000] [-seed 42]
//	dynabench fig5  [-reps 10] [-max-rps 18000]
//	dynabench fig6a [-seed 7]
//	dynabench fig6b [-seed 9]
//	dynabench fig7  [-n 5,17,65]
//	dynabench fig8  [-trials 1000]
//	dynabench ablate [-which s|x|minlist|split|est]
//	dynabench xfer     [-trials 300]   (planned handover vs crash failover)
//	dynabench recovery [-trials 300]   (crash-restart failovers + re-warm)
//	dynabench reads    [-reads 1000]   (ReadIndex vs lease-read latency)
//	dynabench member   [-preload 500]  (add-learner → promote → failover)
//	dynabench scenario -list | <name> [-scale 0.1] | -file spec.json
//	dynabench sweep -scenario <name> -axis n=3,5 -axis loss=0,0.1 [-reps 2]
//	                [-format csv|json] [-out report] [-baseline prior.json]
//	dynabench chaos [-budget b.json] [-storms 20] [-seed 1] [-workers n]
//	                [-out-dir repros] | -replay spec.json
//	dynabench bench [-json BENCH.json] (sim-core microbenchmarks, per-figure
//	                                    wall time, parallel-runner and
//	                                    scenario-engine timing — the per-PR
//	                                    perf trajectory record)
//	dynabench load  [-conns 100000] [-groups 4] [-rate 5000] [-json BENCH.json]
//	                (real-socket open-loop load harness against a loopback
//	                fleet; sim-predicted vs measured p99)
//	dynabench all   (quick versions of everything)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/loadharness"
	"dynatune/internal/metrics"
	"dynatune/internal/netsim"
	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
	"dynatune/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "fig4":
		fig4(args)
	case "fig5":
		fig5(args)
	case "fig6a":
		fig6(args, false)
	case "fig6b":
		fig6(args, true)
	case "fig7":
		fig7(args)
	case "fig8":
		fig8(args)
	case "ablate":
		ablate(args)
	case "xfer":
		xfer(args)
	case "recovery":
		recovery(args)
	case "reads":
		reads(args)
	case "member":
		member(args)
	case "scenario":
		scenarioCmd(args)
	case "sweep":
		sweepCmd(args)
	case "chaos":
		chaosCmd(args)
	case "bench":
		bench(args)
	case "load":
		loadCmd(args)
	case "load-worker":
		// Hidden: re-exec target for `load`'s process sharding — one
		// process cannot hold 100k+ loopback conns under a low
		// RLIMIT_NOFILE hard cap, so the harness splits itself.
		if err := loadharness.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "load-worker:", err)
			os.Exit(1)
		}
	case "all":
		fig4([]string{"-trials", "300"})
		fig5([]string{"-reps", "2"})
		fig6([]string{}, false)
		fig6([]string{}, true)
		fig7([]string{"-n", "5,17"})
		fig8([]string{"-trials", "300"})
		ablate([]string{})
		xfer([]string{"-trials", "100"})
		recovery([]string{"-trials", "100"})
		reads([]string{"-reads", "300"})
		member([]string{})
		scenarioCmd([]string{"asym-partition-abdication", "-scale", "0.1"})
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dynabench <subcommand> [flags]

paper figures (scenario registry + paper-reported values):
  fig4      §IV-B1 election performance under a stable network
  fig5      §IV-B2 peak throughput without failures
  fig6a     §IV-C1 gradual RTT fluctuation adaptivity
  fig6b     §IV-C1 radical RTT fluctuation adaptivity
  fig7      §IV-C2 packet-loss adaptivity and CPU cost
  fig8      §IV-D  geo-replicated (five AWS regions)
  ablate    design-choice sweeps (s, x, minListSize, estimator, split votes)

extensions beyond the paper:
  xfer      planned leadership transfer vs crash failover
  recovery  crash-restart failovers with durable stores + tuner re-warm
  reads     linearizable read latency (ReadIndex vs lease)
  member    online membership change with a cold joiner

scenario engine:
  scenario  -list | <name> [-scale f] [-seed n] [-trials n] [-show] | -file spec.json
  sweep     parameter-grid campaign over one scenario: -axis n=3,5 -axis loss=0,0.1 ...
            emits CSV/JSON reports; -baseline gates against a prior report
  chaos     seeded random fault-schedule search with invariant checking and
            shrinking: -storms 20 -seed 1 [-budget b.json] [-out-dir d] | -replay spec.json
  bench     hot-path microbenchmarks + BENCH.json perf trajectory
  load      real-socket open-loop load harness: boots a sharded loopback
            fleet, ramps pipelined binary connections, reports the
            closed-SLA profile and sim-predicted vs measured p99
            (-conns 100000 -groups 4 -rate 5000 -json BENCH.json)
  all       quick versions of everything
`)
}

// subFlags bundles the boilerplate every subcommand repeated: a flagset
// plus the -seed flag they all share (0 keeps the spec's seed).
func subFlags(name string, defSeed int64) (*flag.FlagSet, *int64) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	seed := fs.Int64("seed", defSeed, "simulation seed")
	return fs, seed
}

// trialFlags adds the -trials flag the failover experiments share.
func trialFlags(name string, defTrials int, defSeed int64) (*flag.FlagSet, *int, *int64) {
	fs, seed := subFlags(name, defSeed)
	trials := fs.Int("trials", defTrials, "trials per variant")
	return fs, trials, seed
}

// mustSpec pulls a registry entry or dies; the registry is this binary's
// own, so absence is a build bug.
func mustSpec(name string) scenario.Spec {
	spec, ok := scenario.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dynabench: scenario %q missing from registry\n", name)
		os.Exit(1)
	}
	return spec
}

// mustBindRun executes a spec, dying on realization errors.
func mustBindRun(spec scenario.Spec) *scenario.Result {
	res, err := bind.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	return res
}

func stable100() netsim.Profile {
	return netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond})
}

// fig4 reproduces §IV-B1 (Fig. 4): detection/OTS CDFs over leader kills.
func fig4(args []string) {
	fs, trials, seed := trialFlags("fig4", 1000, 42)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Fig. 4: election performance under stable network (RTT 100ms, loss 0%) ==")
	fmt.Println("paper: Raft det 1205ms / OTS 1449ms; Dynatune det 237ms / OTS 797ms (-80% / -45%)")
	cdfs := map[string]*metrics.CDF{}
	var raftDet, raftOTS, dynDet, dynOTS float64
	for _, name := range []string{"paper-elections-raft", "paper-elections"} {
		spec := mustSpec(name)
		spec.Trials, spec.Seed = *trials, *seed
		res := mustBindRun(spec).Failover
		det, ots := res.Summary()
		fmt.Printf("%-9s  detection: mean %6.0fms p50 %6.0fms p99 %6.0fms\n", res.Variant, det.Mean, det.P50, det.P99)
		fmt.Printf("%-9s  OTS:       mean %6.0fms p50 %6.0fms p99 %6.0fms   (randTO %4.0fms, %d split rounds, %d/%d ok)\n",
			res.Variant, ots.Mean, ots.P50, ots.P99, res.MeanRandTimeoutMs, res.SplitVoteRounds, len(res.OTSMs), res.Trials)
		cdfs[res.Variant+" detection"] = metrics.NewCDF(res.DetectionMs)
		cdfs[res.Variant+" OTS"] = metrics.NewCDF(res.OTSMs)
		if res.Variant == "Raft" {
			raftDet, raftOTS = det.Mean, ots.Mean
		} else {
			dynDet, dynOTS = det.Mean, ots.Mean
		}
	}
	fmt.Printf("reduction: detection %.0f%% (paper 80%%), OTS %.0f%% (paper 45%%)\n",
		(1-dynDet/raftDet)*100, (1-dynOTS/raftOTS)*100)
	fmt.Println()
	fmt.Print(metrics.RenderCDFs(cdfs, 3000, 72))
}

// fig5 reproduces §IV-B2 (Fig. 5): throughput–latency without failures.
func fig5(args []string) {
	fs, seed := subFlags("fig5", 21)
	reps := fs.Int("reps", 10, "ramp repetitions (paper: 10)")
	maxRPS := fs.Int("max-rps", 18000, "top of the RPS ramp")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Fig. 5: peak throughput without failures (RTT 100ms) ==")
	fmt.Println("paper: Raft 13678 req/s, Dynatune 12800 req/s (-6.4%)")
	peaks := map[string]float64{}
	ramp := workload.PaperRamp(*maxRPS)
	ramp.Poisson = true
	for _, v := range []string{"raft", "dynatune"} {
		spec := mustSpec("paper-throughput")
		spec.Variant = scenario.VariantSpec{Name: v}
		spec.Reps, spec.Seed = *reps, *seed
		spec.Workload = scenario.WorkloadFrom(ramp, spec.Workload.ClientRTT.D())
		res := mustBindRun(spec).Ramp
		fmt.Printf("%s:\n  offered  throughput      ±std   latency\n", res.Variant)
		for _, p := range res.Points {
			fmt.Printf("  %6d  %8.0f req/s %6.0f  %8.1fms\n", p.OfferedRPS, p.ThroughputRS, p.ThroughputStd, p.LatencyMs)
		}
		peaks[res.Variant] = cluster.PeakThroughput(res.Points)
	}
	fmt.Printf("peak: Raft %.0f req/s, Dynatune %.0f req/s (%.1f%% lower; paper 6.4%%)\n",
		peaks["Raft"], peaks["Dynatune"], (1-peaks["Dynatune"]/peaks["Raft"])*100)
}

// fig6 reproduces §IV-C1 (Figs. 6a/6b): RTT fluctuation adaptivity.
func fig6(args []string, radical bool) {
	fs, seed := subFlags("fig6", 7)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	spec := mustSpec("paper-rtt-gradual")
	if radical {
		fmt.Println("== Fig. 6b: radical RTT fluctuation 50→500→50ms (1 min each) ==")
		fmt.Println("paper: Dynatune false-detects but no OTS; Raft stable; Raft-Low loses the high-RTT minute")
		spec.Network = scenario.NetFrom(netsim.RadicalRTTSpike(netsim.Params{Jitter: 2 * time.Millisecond},
			50*time.Millisecond, 500*time.Millisecond, time.Minute))
		spec.Horizon = scenario.Duration(3 * time.Minute)
	} else {
		fmt.Println("== Fig. 6a: gradual RTT fluctuation 50→200→50ms (10ms steps, 1 min each) ==")
		fmt.Println("paper: Dynatune tracks RTT, no OTS; Raft randTO ≈1700ms; Raft-Low ≈15s then ≈10min OTS")
	}
	for _, v := range []string{"dynatune", "raft", "raft-low"} {
		s := spec
		s.Variant = scenario.VariantSpec{Name: v}
		s.Seed = *seed
		res := mustBindRun(s).Series
		fmt.Printf("%-9s OTS total %7.1fs in %3d spans | timeouts %4d  elections %4d  reverts %4d\n",
			res.Variant, res.OTS.Total().Seconds(), res.OTS.Count(), res.Timeouts, res.Elections, res.Reverts)
		fmt.Println(metrics.RenderSeries(12, res.RandTimeout3rdMs, res.LinkRTTMs))
	}
}

// fig7 reproduces §IV-C2 (Figs. 7a/7b): packet-loss adaptivity and CPU.
func fig7(args []string) {
	fs, seed := subFlags("fig7", 3)
	ns := fs.String("n", "5,17,65", "cluster sizes")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Fig. 7: loss sweep 0→30→0% (3 min holds), RTT 200ms ==")
	fmt.Println("paper: Dynatune shrinks h with loss and restores it; Fix-K leader >100% CPU at N=65")
	for _, nStr := range strings.Split(*ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(nStr))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -n element %q\n", nStr)
			os.Exit(2)
		}
		for _, v := range []string{"dynatune", "fix-k"} {
			spec := mustSpec("paper-loss-sweep")
			spec.Topology.N = n
			spec.Variant = scenario.VariantSpec{Name: v, FixK: 10}
			spec.Seed = *seed
			res := mustBindRun(spec).Series
			fmt.Printf("N=%-3d %-10s elections=%d\n", n, res.Variant, res.Elections)
			fmt.Printf("  h:   0%%loss %5.0fms  15%%loss %5.0fms  30%%loss %5.0fms  back-to-0%% %5.0fms\n",
				res.LeaderHMs.MeanBetween(1*time.Minute, 3*time.Minute),
				res.LeaderHMs.MeanBetween(10*time.Minute, 12*time.Minute),
				res.LeaderHMs.MeanBetween(19*time.Minute, 21*time.Minute),
				res.LeaderHMs.MeanBetween(37*time.Minute, 39*time.Minute))
			fmt.Printf("  CPU: leader 0%%loss %5.1f%%  30%%loss %5.1f%%  | follower 30%%loss %4.1f%%\n",
				res.LeaderCPU.MeanBetween(1*time.Minute, 3*time.Minute),
				res.LeaderCPU.MeanBetween(19*time.Minute, 21*time.Minute),
				res.FollowerCPU.MeanBetween(19*time.Minute, 21*time.Minute))
		}
	}
}

// fig8 reproduces §IV-D (Fig. 8): the geo-replicated AWS experiment.
func fig8(args []string) {
	fs, trials, seed := trialFlags("fig8", 1000, 11)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Fig. 8: geo-replicated (Tokyo, London, California, Sydney, São Paulo) ==")
	fmt.Println("paper: Raft det 1137ms / OTS 1718ms; Dynatune det 213ms / OTS 1145ms (-81% / -33%)")
	var raftDet, raftOTS, dynDet, dynOTS float64
	for _, v := range []string{"raft", "dynatune"} {
		spec := mustSpec("paper-geo-elections")
		spec.Variant = scenario.VariantSpec{Name: v}
		spec.Trials, spec.Seed = *trials, *seed
		res := mustBindRun(spec).Failover
		det, ots := res.Summary()
		fmt.Printf("%-9s detection mean %6.0fms p50 %6.0f | OTS mean %6.0fms p50 %6.0f (%d/%d ok)\n",
			res.Variant, det.Mean, det.P50, ots.Mean, ots.P50, len(res.OTSMs), res.Trials)
		if res.Variant == "Raft" {
			raftDet, raftOTS = det.Mean, ots.Mean
		} else {
			dynDet, dynOTS = det.Mean, ots.Mean
		}
	}
	fmt.Printf("reduction: detection %.0f%% (paper 81%%), OTS %.0f%% (paper 33%%)\n",
		(1-dynDet/raftDet)*100, (1-dynOTS/raftOTS)*100)
}

// xfer contrasts crash failover with planned leadership transfer (an
// extension beyond the paper: handover ≈1.5 RTT instead of a detection
// timeout).
func xfer(args []string) {
	fs, trials, seed := trialFlags("xfer", 300, 61)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Planned maintenance: leadership transfer vs crash failover (RTT 100ms) ==")
	for _, v := range []string{"raft", "dynatune"} {
		crash := mustSpec("paper-elections")
		crash.Variant = scenario.VariantSpec{Name: v}
		crash.Trials, crash.Seed = *trials, *seed
		_, ots := mustBindRun(crash).Failover.Summary()

		tr := mustSpec("planned-handover")
		tr.Variant = scenario.VariantSpec{Name: v}
		tr.Trials, tr.Seed = *trials, *seed+1
		res := mustBindRun(tr).Failover
		handover := metrics.Summarize(res.HandoverMs)
		fmt.Printf("%-9s crash OTS mean %6.0fms | transfer handover mean %5.0fms p99 %5.0fms (%d/%d ok)\n",
			res.Variant, ots.Mean, handover.Mean, handover.P99, len(res.HandoverMs), res.Trials)
	}
}

// recovery runs crash-restart failovers: beyond the paper's pause model,
// the leader process dies and recovers from its durable store with cold
// tuner state (§III-A crash-recovery fault class).
func recovery(args []string) {
	fs, trials, seed := trialFlags("recovery", 300, 61)
	downtime := fs.Duration("downtime", 500*time.Millisecond, "crash-to-restart delay")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Crash-recovery failovers (extension; paper §III-A fault model, RTT 100ms) ==")
	for _, v := range []string{"raft", "dynatune"} {
		spec := mustSpec("crash-recovery")
		spec.Variant = scenario.VariantSpec{Name: v}
		spec.Trials, spec.Seed = *trials, *seed
		spec.Downtime = scenario.Duration(*downtime)
		res := mustBindRun(spec).Failover
		det, ots := res.Summary()
		fmt.Printf("%-9s  detection: mean %6.0fms p99 %6.0fms   OTS: mean %6.0fms p99 %6.0fms  (%d/%d ok, replay %.0f entries)\n",
			res.Variant, det.Mean, det.P99, ots.Mean, ots.P99, len(res.OTSMs), res.Trials, res.ReplayEntries)
		if len(res.RetuneMs) > 0 {
			fmt.Printf("%-9s  restarted-node re-warm: mean %6.0fms over %d restarts (cold fallback until minListSize beats)\n",
				res.Variant, metrics.Summarize(res.RetuneMs).Mean, len(res.RetuneMs))
		}
	}
}

// reads measures the linearizable-read paths (ReadIndex vs lease) per
// variant; the lease window is the election timeout, which Dynatune tunes.
func reads(args []string) {
	fs, seed := subFlags("reads", 77)
	n := fs.Int("reads", 1000, "reads per configuration")
	loss := fs.Float64("loss", 0, "packet loss rate on all links")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Printf("== Linearizable reads (extension; RTT 100ms, loss %.0f%%) ==\n", *loss*100)
	for _, v := range []string{"raft", "dynatune"} {
		for _, mode := range []string{"read-index", "lease"} {
			spec := mustSpec("read-latency-lease")
			spec.Variant = scenario.VariantSpec{Name: v}
			spec.Seed = *seed
			spec.Reads.Reads, spec.Reads.Mode = *n, mode
			if *loss > 0 {
				for i := range spec.Network.Segments {
					spec.Network.Segments[i].Loss = *loss
				}
			}
			res := mustBindRun(spec).Reads
			s := res.LatencySummary()
			fmt.Printf("%-9s %-10s  mean %6.1fms p99 %6.1fms   lease hits %4d/%d  fallbacks %4d  failed %d\n",
				res.Variant, res.Mode, s.Mean, s.P99, res.LeaseHits, res.Issued, res.Fallbacks, res.Failed)
		}
	}
}

// member runs the online-growth scenario: add a learner, promote it, then
// fail the leader while the joiner's measurement state is still cold.
func member(args []string) {
	fs, seed := subFlags("member", 91)
	preload := fs.Int("preload", 500, "log entries committed before the join")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	fmt.Println("== Membership change: 4 voters + learner → 5 voters → leader failure (extension) ==")
	for _, v := range []string{"raft", "dynatune"} {
		spec := mustSpec("membership-growth")
		spec.Variant = scenario.VariantSpec{Name: v}
		spec.Seed = *seed
		spec.Membership.Preload = *preload
		res := mustBindRun(spec).Membership
		fmt.Printf("%-9s  catch-up %6.0fms  promote %5.0fms  joiner-tuned %6.0fms  post-change OTS %6.0fms  joiner-won=%v\n",
			res.Variant, res.CatchupMs, res.PromoteMs, res.JoinerTunedMs, res.PostFailoverOTSMs, res.JoinerBecameLeader)
	}
}

// ablate runs the design-choice sweeps indexed in DESIGN.md. The custom
// static-tuner variant of the split-vote sweep cannot be expressed as a
// JSON spec (it needs a tuner closure), so this subcommand drives the
// cluster entry points directly — which themselves route through the
// scenario engine.
func ablate(args []string) {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	which := fs.String("which", "all", "s|x|minlist|split|est|all")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *which == "s" || *which == "all" {
		fmt.Println("== Ablation: safety factor s (Et = µ + s·σ) under jitter 8ms ==")
		prof := netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 8 * time.Millisecond})
		for _, s := range []float64{1, 2, 3, 4} {
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 13, Variant: cluster.VariantDynatune(dynatune.Options{SafetyFactor: s}), Profile: prof,
			}, 200, 4*time.Second)
			det, ots := res.Summary()
			fmt.Printf("  s=%v: detection %5.0fms  OTS %5.0fms  failed trials %d\n", s, det.Mean, ots.Mean, res.FailedTrials)
		}
	}
	if *which == "x" || *which == "all" {
		fmt.Println("== Ablation: arrival probability x under 20% loss, RTT 200ms ==")
		prof := netsim.Constant(netsim.Params{RTT: 200 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.2})
		for _, x := range []float64{0.9, 0.99, 0.999, 0.9999} {
			res := cluster.RunFluctuation(cluster.Options{
				N: 5, Seed: 15, Variant: cluster.VariantDynatune(dynatune.Options{ArrivalProbability: x}), Profile: prof,
			}, 5*time.Minute, 5*time.Second)
			fmt.Printf("  x=%v: h %5.0fms  false timeouts %3d  elections %d\n",
				x, res.LeaderHMs.MeanBetween(2*time.Minute, 5*time.Minute), res.Timeouts, res.Elections)
		}
	}
	if *which == "minlist" || *which == "all" {
		fmt.Println("== Ablation: minListSize (tuning warm-up) ==")
		for _, m := range []int{2, 10, 50} {
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 17, Variant: cluster.VariantDynatune(dynatune.Options{MinListSize: m}), Profile: stable100(),
			}, 200, 8*time.Second)
			det, ots := res.Summary()
			fmt.Printf("  minListSize=%2d: detection %5.0fms  OTS %5.0fms\n", m, det.Mean, ots.Mean)
		}
	}
	if *which == "est" || *which == "all" {
		fmt.Println("== Ablation: Et estimator (window µ+sσ [paper] | EWMA [RFC 6298] | window max) ==")
		ests := []dynatune.Estimator{dynatune.EstimatorWindow, dynatune.EstimatorEWMA, dynatune.EstimatorMax}
		jitterProf := netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 8 * time.Millisecond})
		spikeProf := netsim.RadicalRTTSpike(netsim.Params{Jitter: 2 * time.Millisecond},
			50*time.Millisecond, 500*time.Millisecond, time.Minute)
		for _, e := range ests {
			v := cluster.VariantDynatune(dynatune.Options{Estimator: e})
			v.Name = "Dyn-" + e.String()
			elec := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 23, Variant: v, Profile: jitterProf,
			}, 200, 4*time.Second)
			det, ots := elec.Summary()
			spike := cluster.RunFluctuation(cluster.Options{
				N: 5, Seed: 25, Variant: v, Profile: spikeProf,
			}, 3*time.Minute, 5*time.Second)
			fmt.Printf("  %-10s detection %5.0fms  OTS %5.0fms | RTT spike: %2d false timeouts, %4.1fs OTS\n",
				e, det.Mean, ots.Mean, spike.Timeouts, spike.OTS.Total().Seconds())
		}
	}
	if *which == "split" || *which == "all" {
		fmt.Println("== Ablation: split-vote rate vs Et (§IV-E discussion) ==")
		for _, et := range []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 1000 * time.Millisecond} {
			v := cluster.Variant{
				Name:           "Static(" + et.String() + ")",
				NewTuner:       func() raftTuner { return newStatic(et) },
				HeartbeatClass: netsim.TCP,
			}
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 19, Variant: v, Profile: stable100(),
			}, 200, 2*time.Second)
			det, ots := res.Summary()
			fmt.Printf("  Et=%6s: detection %5.0fms  election %5.0fms  split rounds %d\n",
				et, det.Mean, ots.Mean-det.Mean, res.SplitVoteRounds)
		}
	}
}
