package kv

import (
	"encoding/binary"
	"sort"
)

// Pair is one key/value in a span export.
type Pair struct {
	Key   string
	Value []byte
}

// EncodeSpan serializes pairs as count(4) followed by length-prefixed
// key/value pairs — the payload of an OpInstallSpan command. The chunk is
// self-contained: each one can be applied independently and in any order
// relative to its siblings (installing a pair twice is a no-op overwrite).
func EncodeSpan(pairs []Pair) []byte {
	size := 4
	for _, p := range pairs {
		size += 4 + len(p.Key) + 4 + len(p.Value)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Key)))
		buf = append(buf, p.Key...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf
}

// DecodeSpan parses a chunk produced by EncodeSpan.
func DecodeSpan(b []byte) ([]Pair, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	pairs := make([]Pair, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, ErrCorrupt
		}
		klen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < klen+4 {
			return nil, ErrCorrupt
		}
		k := string(b[:klen])
		b = b[klen:]
		vlen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vlen {
			return nil, ErrCorrupt
		}
		pairs = append(pairs, Pair{Key: k, Value: append([]byte(nil), b[:vlen]...)})
		b = b[vlen:]
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return pairs, nil
}

// SpanExport packs every key satisfying owned into byte-capped
// EncodeSpan chunks, iterating in sorted key order so the chunking — and
// everything replicated downstream of it — is a pure function of the
// store state. maxBytes caps each chunk's encoded size; a single pair
// larger than the cap still gets a chunk of its own. It returns the
// chunks alongside the exported keys (for the caller's moved-set
// bookkeeping).
func (s *Store) SpanExport(owned func(string) bool, maxBytes int) (chunks [][]byte, keys []string) {
	s.mu.RLock()
	for k := range s.data {
		if owned(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var cur []Pair
	curBytes := 4
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, EncodeSpan(cur))
			cur, curBytes = nil, 4
		}
	}
	for _, k := range keys {
		v := s.data[k]
		pb := 4 + len(k) + 4 + len(v)
		if len(cur) > 0 && curBytes+pb > maxBytes {
			flush()
		}
		cur = append(cur, Pair{Key: k, Value: append([]byte(nil), v...)})
		curBytes += pb
	}
	s.mu.RUnlock()
	flush()
	return chunks, keys
}
