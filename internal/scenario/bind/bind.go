// Package bind realizes declarative scenario.Specs into the concrete
// simulated testbeds: it maps the spec's variant name to a tuner factory,
// its topology to cluster/shard Options (including the geo RTT matrix),
// and its network section to a netsim profile, then executes the spec on
// the scenario engine. It lives below cmd/dynabench and above
// cluster/shard; the scenario package itself stays free of testbed
// imports so the testbeds can expose their legacy Run* APIs as thin spec
// constructors without an import cycle.
package bind

import (
	"fmt"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/geo"
	"dynatune/internal/metrics"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
	"dynatune/internal/shard"
)

// Variant realizes a spec's variant section. Names are the registry keys
// (case-insensitive display names also accepted).
func Variant(v scenario.VariantSpec) (cluster.Variant, error) {
	var est dynatune.Estimator
	switch v.Estimator {
	case "", "window":
		est = dynatune.EstimatorWindow
	case "ewma":
		est = dynatune.EstimatorEWMA
	case "max":
		est = dynatune.EstimatorMax
	default:
		return cluster.Variant{}, fmt.Errorf("bind: unknown estimator %q", v.Estimator)
	}
	dyn := dynatune.Options{
		SafetyFactor:       v.SafetyFactor,
		ArrivalProbability: v.ArrivalProbability,
		MinListSize:        v.MinListSize,
		Estimator:          est,
	}
	switch v.Name {
	case "raft", "Raft":
		return cluster.VariantRaft(), nil
	case "raft-low", "Raft-Low":
		return cluster.VariantRaftLow(), nil
	case "dynatune", "Dynatune":
		return cluster.VariantDynatune(dyn), nil
	case "dynatune-ext", "Dynatune-Ext":
		return cluster.VariantDynatuneExt(dyn), nil
	case "fix-k":
		k := v.FixK
		if k <= 0 {
			k = 10
		}
		return cluster.VariantFixK(k), nil
	}
	return cluster.Variant{}, fmt.Errorf("bind: unknown variant %q", v.Name)
}

// regions maps the spec's region names to the geo model.
func regions(names []string) ([]geo.Region, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]geo.Region, len(names))
	for i, n := range names {
		found := false
		for _, r := range geo.Regions {
			if r.String() == n {
				out[i], found = r, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bind: unknown region %q", n)
		}
	}
	return out, nil
}

// ClusterOptions realizes the single-group testbed options of a spec.
func ClusterOptions(spec scenario.Spec) (cluster.Options, error) {
	v, err := Variant(spec.Variant)
	if err != nil {
		return cluster.Options{}, err
	}
	regs, err := regions(spec.Topology.Regions)
	if err != nil {
		return cluster.Options{}, err
	}
	opts := cluster.Options{
		N:              spec.Topology.N,
		Seed:           spec.Seed,
		Variant:        v,
		Regions:        regs,
		GeoJitterFrac:  spec.Topology.GeoJitterFrac,
		GeoLoss:        spec.Topology.GeoLoss,
		InitialMembers: spec.Topology.InitialMembers,
		Persist:        spec.Topology.Persist,
		Snapshot: raft.SnapshotPolicy{
			EveryEntries:  spec.Topology.SnapshotEvery,
			EveryBytes:    spec.Topology.SnapshotBytes,
			RetainEntries: spec.Topology.SnapshotRetain,
		},
		SnapshotChunk: spec.Topology.SnapshotChunk,
	}
	if len(regs) == 0 && len(spec.Network.Segments) > 0 {
		opts.Profile = spec.Network.Profile()
	}
	return opts, nil
}

// EnvFor realizes the execution environment of a spec: a sharded env when
// the topology declares groups, the single-group testbed otherwise.
func EnvFor(spec scenario.Spec) (scenario.Env, error) {
	if spec.Topology.Groups > 0 {
		v, err := Variant(spec.Variant)
		if err != nil {
			return scenario.Env{}, err
		}
		npg := spec.Topology.NodesPerGroup
		if npg == 0 {
			// "n" documents the per-group size; without this, shard's own
			// default (3) would silently shrink a {"n":5,"groups":4} spec.
			npg = spec.Topology.N
		}
		opts := shard.Options{
			Groups:        spec.Topology.Groups,
			NodesPerGroup: npg,
			Seed:          spec.Seed,
			Variant:       v,
			Persist:       spec.Topology.Persist,
			Snapshot: raft.SnapshotPolicy{
				EveryEntries:  spec.Topology.SnapshotEvery,
				EveryBytes:    spec.Topology.SnapshotBytes,
				RetainEntries: spec.Topology.SnapshotRetain,
			},
			SnapshotChunk: spec.Topology.SnapshotChunk,
		}
		if len(spec.Network.Segments) > 0 {
			opts.Profile = spec.Network.Profile()
		}
		// An armed invariant suite needs sequence-bearing values to judge
		// read freshness; plain runs keep the constant value so goldens stay
		// byte-identical.
		load := shard.LoadOptions{SeqValues: spec.Invariants != nil}
		if w := spec.Workload; w != nil {
			load.Keys = w.Keys
			load.Zipf = w.Zipf
			load.ClientRTT = w.ClientRTT.D()
		}
		return opts.ScenarioEnv(load), nil
	}
	opts, err := ClusterOptions(spec)
	if err != nil {
		return scenario.Env{}, err
	}
	return opts.ScenarioEnv(), nil
}

// Run realizes and executes one spec on the default worker pool.
func Run(spec scenario.Spec) (*scenario.Result, error) {
	return RunWorkers(spec, 0)
}

// RunWorkers realizes and executes one spec with an explicit trial-runner
// worker count (0 keeps the env default, cluster.TrialWorkers; 1 is fully
// sequential). The sweep engine passes 1 so that grid cells — not the
// trials inside a cell — are the unit of parallelism, avoiding nested
// worker pools; by the RunShards contract the results are identical
// either way.
func RunWorkers(spec scenario.Spec, workers int) (*scenario.Result, error) {
	// Membership specs grow an (N−1)-voter cluster; default the initial
	// membership the way the legacy entry point always has.
	if spec.Measure == scenario.MeasureMembership && spec.Topology.InitialMembers == 0 {
		spec.Topology.InitialMembers = spec.Topology.N - 1
	}
	env, err := EnvFor(spec)
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		env.Workers = workers
	}
	return scenario.Run(spec, env)
}

// RunNamed looks up and executes a registry scenario, scaled by frac
// (1 = full size).
func RunNamed(name string, frac float64) (*scenario.Result, error) {
	spec, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("bind: unknown scenario %q (see `dynabench scenario -list`)", name)
	}
	return Run(scenario.Scale(spec, frac))
}

// Summarize renders a result compactly for the CLI.
func Summarize(res *scenario.Result) string {
	spec := res.Spec
	head := fmt.Sprintf("scenario %-28s variant=%s seed=%d\n", spec.Name, spec.Variant.Name, spec.Seed)
	switch {
	case res.Failover != nil:
		f := res.Failover
		det, ots := f.Summary()
		s := head + fmt.Sprintf("  trials %d (%d failed)\n", f.Trials, f.FailedTrials)
		if len(f.DetectionMs) > 0 {
			s += fmt.Sprintf("  detection: mean %6.0fms p50 %6.0fms p99 %6.0fms\n", det.Mean, det.P50, det.P99)
			s += fmt.Sprintf("  OTS:       mean %6.0fms p50 %6.0fms p99 %6.0fms  (randTO %4.0fms, %d split rounds)\n",
				ots.Mean, ots.P50, ots.P99, f.MeanRandTimeoutMs, f.SplitVoteRounds)
		}
		if len(f.HandoverMs) > 0 {
			h := metrics.Summarize(f.HandoverMs)
			s += fmt.Sprintf("  handover:  mean %6.0fms p99 %6.0fms over %d transfers\n", h.Mean, h.P99, len(f.HandoverMs))
		}
		if len(f.RetuneMs) > 0 {
			s += fmt.Sprintf("  re-warm:   mean %6.0fms over %d restarts, replay %.0f entries\n",
				metrics.Summarize(f.RetuneMs).Mean, len(f.RetuneMs), f.ReplayEntries)
		}
		return s
	case res.Series != nil:
		sr := res.Series
		return head + fmt.Sprintf("  horizon %v: OTS total %.1fs in %d spans | timeouts %d  elections %d  reverts %d\n",
			sr.Horizon, sr.OTS.Total().Seconds(), sr.OTS.Count(), sr.Timeouts, sr.Elections, sr.Reverts)
	case res.Ramp != nil:
		r := res.Ramp
		peak := 0.0
		for _, p := range r.Points {
			if p.ThroughputRS > peak {
				peak = p.ThroughputRS
			}
		}
		return head + fmt.Sprintf("  %d steps, peak %.0f req/s | propose errors %d  lost %d  pending %d\n",
			len(r.Points), peak, r.ProposeErrors, r.Lost, r.Pending)
	case len(res.ShardRamps) > 0:
		s := head
		for i, r := range res.ShardRamps {
			s += fmt.Sprintf("  rep %d: %d groups, agg %.0f req/s, peak %.0f, p99 %.0fms | lost %d pending %d\n",
				i, r.Groups, r.AggThroughput, r.PeakThroughput, r.P99Ms, r.Lost, r.Pending)
			if r.MaxLogEntries > 0 {
				s += fmt.Sprintf("    peak live log: %d entries, %d bytes (worst replica)\n",
					r.MaxLogEntries, r.MaxLogBytes)
			}
			if inv := r.Invariants; inv != nil {
				if inv.OK() {
					s += fmt.Sprintf("    invariants OK (%d acked writes, %d probes, max unavail %.0fms)\n",
						inv.AckedWrites, inv.Probes, inv.MaxUnavailMs)
				} else {
					for _, v := range inv.Violations {
						s += fmt.Sprintf("    INVARIANT VIOLATION %s: %s\n", v.Invariant, v.Detail)
					}
					if inv.Suppressed > 0 {
						s += fmt.Sprintf("    ... and %d further violation(s) suppressed\n", inv.Suppressed)
					}
				}
			}
			if rb := r.Rebalance; rb != nil {
				if rb.Unfinished {
					s += "    rebalance UNFINISHED: a migration was still draining when the run ended\n"
				}
				for _, mv := range rb.Moves {
					if mv.Skipped {
						s += fmt.Sprintf("    rebalance %s g%d SKIPPED (an earlier move was still draining)\n", mv.Kind, mv.Group)
						continue
					}
					if mv.Aborted {
						s += fmt.Sprintf("    rebalance %s g%d ABORTED (no leader by the cutover deadline)\n", mv.Kind, mv.Group)
						continue
					}
					s += fmt.Sprintf("    rebalance %s g%d epoch %d: moved %d/%d keys (%.1f%%, ≈1/(G+1)) in %.0fms drain + %.0fms cleanup, %d rounds\n",
						mv.Kind, mv.Group, mv.Epoch, mv.MovedKeys, mv.TotalKeys, 100*mv.MovedFraction,
						mv.CutoverMs-mv.StartMs, mv.DoneMs-mv.CutoverMs, mv.DrainRounds)
					s += fmt.Sprintf("      %d bulk chunks, %d propose ops, %d propose errors\n",
						mv.BulkChunks, mv.ProposeOps, mv.ProposeErrors)
				}
				s += fmt.Sprintf("    latency p50/p99 ms: pre %.0f/%.0f (%d)  mid-move %.0f/%.0f (%d)  post %.0f/%.0f (%d)\n",
					rb.Pre.P50Ms, rb.Pre.P99Ms, rb.Pre.Completed,
					rb.Mid.P50Ms, rb.Mid.P99Ms, rb.Mid.Completed,
					rb.Post.P50Ms, rb.Post.P99Ms, rb.Post.Completed)
			}
		}
		return s
	case res.Reads != nil:
		r := res.Reads
		ls := r.LatencySummary()
		return head + fmt.Sprintf("  %s: mean %.1fms p99 %.1fms | lease hits %d/%d  fallbacks %d  failed %d\n",
			r.Mode, ls.Mean, ls.P99, r.LeaseHits, r.Issued, r.Fallbacks, r.Failed)
	case res.Membership != nil:
		m := res.Membership
		return head + fmt.Sprintf("  catch-up %.0fms  promote %.0fms  joiner-tuned %.0fms  post-change OTS %.0fms  joiner-won=%v\n",
			m.CatchupMs, m.PromoteMs, m.JoinerTunedMs, m.PostFailoverOTSMs, m.JoinerBecameLeader)
	}
	return head
}
