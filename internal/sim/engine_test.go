package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run(time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want horizon 1s", e.Now())
	}
}

func TestEqualTimestampsFIFOs(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel(h)
	e.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling again (and cancelling a zero handle) must be harmless.
	e.Cancel(h)
	e.Cancel(Handle{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var got []int
	h1 := e.Schedule(time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Cancel(h1)
	e.Run(time.Second)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	var times []time.Duration
	e.Schedule(time.Millisecond, func() {
		times = append(times, e.Now())
		e.After(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run(time.Second)
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Millisecond, func() {})
	e.Run(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5*time.Millisecond, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with nil fn")
		}
	}()
	e.Schedule(0, nil)
}

func TestRunHorizonExcludesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
	e.Run(3 * time.Second)
	if !fired {
		t.Fatal("event did not fire on later Run")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(time.Millisecond, func() { count++; e.Halt() })
	e.Schedule(2*time.Millisecond, func() { count++ })
	e.Run(time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (halted)", count)
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	e.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(time.Millisecond, func() {
		e.After(-5*time.Millisecond, func() { fired = true })
	})
	e.Run(time.Second)
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var out []time.Duration
		var schedule func()
		n := 0
		schedule = func() {
			if n > 200 {
				return
			}
			n++
			out = append(out, e.Now())
			e.After(time.Duration(e.Rand().Intn(1000))*time.Microsecond, schedule)
		}
		e.Schedule(0, schedule)
		e.Run(time.Second)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with random timestamps, execution order
// is sorted by timestamp with FIFO tie-break, and the clock never goes
// backwards.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fireTimes []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			e.Schedule(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run(time.Hour)
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(1)
		n := 50
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = e.Schedule(time.Duration(rng.Intn(100))*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(handles[i])
			}
		}
		e.Run(time.Hour)
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSerializesWork(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	var done []time.Duration
	e.Schedule(0, func() {
		p.Exec(10*time.Millisecond, func() { done = append(done, e.Now()) })
		p.Exec(5*time.Millisecond, func() { done = append(done, e.Now()) })
	})
	e.Run(time.Second)
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[0] != 10*time.Millisecond || done[1] != 15*time.Millisecond {
		t.Fatalf("completion times = %v, want [10ms 15ms]", done)
	}
	if p.Busy() != 15*time.Millisecond {
		t.Fatalf("Busy() = %v, want 15ms", p.Busy())
	}
}

func TestProcIdleGap(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	var done []time.Duration
	e.Schedule(0, func() {
		p.Exec(time.Millisecond, func() { done = append(done, e.Now()) })
	})
	e.Schedule(100*time.Millisecond, func() {
		p.Exec(time.Millisecond, func() { done = append(done, e.Now()) })
	})
	e.Run(time.Second)
	if done[1] != 101*time.Millisecond {
		t.Fatalf("second completion = %v, want 101ms (idle gap not carried over)", done[1])
	}
	if p.Busy() != 2*time.Millisecond {
		t.Fatalf("Busy() = %v, want 2ms", p.Busy())
	}
}

func TestProcPauseDropsWork(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	completed := 0
	e.Schedule(0, func() {
		p.Exec(20*time.Millisecond, func() { completed++ })
	})
	e.Schedule(5*time.Millisecond, func() { p.Pause() })
	e.Schedule(50*time.Millisecond, func() {
		if p.Exec(time.Millisecond, func() { completed++ }) {
			t.Error("Exec accepted work while paused")
		}
	})
	e.Run(time.Second)
	if completed != 0 {
		t.Fatalf("completed = %d, want 0 (pause must suppress in-flight completion)", completed)
	}
}

func TestProcResume(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	completed := 0
	e.Schedule(0, func() { p.Pause() })
	e.Schedule(10*time.Millisecond, func() { p.Resume() })
	e.Schedule(20*time.Millisecond, func() {
		if !p.Exec(time.Millisecond, func() { completed++ }) {
			t.Error("Exec rejected after Resume")
		}
	})
	e.Run(time.Second)
	if completed != 1 {
		t.Fatalf("completed = %d, want 1", completed)
	}
}

func TestProcWindowBusy(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	e.Schedule(0, func() { p.Exec(3*time.Millisecond, func() {}) })
	e.Run(time.Second)
	if got := p.TakeWindowBusy(); got != 3*time.Millisecond {
		t.Fatalf("window busy = %v, want 3ms", got)
	}
	if got := p.TakeWindowBusy(); got != 0 {
		t.Fatalf("window busy after take = %v, want 0", got)
	}
}

func TestProcBacklog(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e)
	e.Schedule(0, func() {
		p.Exec(10*time.Millisecond, func() {})
		if p.Backlog() != 10*time.Millisecond {
			t.Errorf("Backlog = %v, want 10ms", p.Backlog())
		}
	})
	e.Run(time.Second)
	if p.Backlog() != 0 {
		t.Fatalf("Backlog after drain = %v, want 0", p.Backlog())
	}
}
