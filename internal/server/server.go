// Package server runs one Dynatune/Raft node on real hardware and wall
// clocks: it drives a raft.Node from a single event loop, uses the hybrid
// UDP/TCP transport, applies commands to the kv store, and exposes a
// small HTTP API (put/get/status) that cmd/dynactl and the examples use.
// It is the real-world counterpart of internal/cluster's simulated
// runtime — the raft.Node and tuner code are identical.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/server/batcher"
	"dynatune/internal/raft"
	"dynatune/internal/transport"
)

// Config configures a Server.
type Config struct {
	ID    raft.ID
	Peers map[raft.ID]transport.PeerAddr // all peers including self
	// Listen addresses; zero ports pick ephemeral ones.
	Listen transport.PeerAddr
	// HTTPListen is the client API address (":0" for ephemeral).
	HTTPListen string
	// BinListen is the binary client API address ("" disables it). This
	// is the hot serving path: pipelined length-prefixed requests over
	// one connection (see internal/wireclient).
	BinListen string
	// Tuner for this node (static baseline or dynatune).
	Tuner raft.Tuner
	// Tracer is optional.
	Tracer raft.Tracer
	// Logger defaults to a prefixed standard logger.
	Logger *log.Logger
	// ProposeTimeout bounds how long a PUT waits for commit (default 5s).
	ProposeTimeout time.Duration
	// BatchWindow enables server-side group commit on the propose path:
	// concurrent commands arriving within the window coalesce into ONE
	// multi-op raft entry (kv.OpBatch), cutting per-entry replication
	// cost under load. Zero disables batching — every Propose is its own
	// entry, as before.
	BatchWindow time.Duration
	// BatchMaxOps / BatchMaxBytes flush a batch before the window when it
	// fills (defaults batcher.DefaultMaxOps / DefaultMaxBytes). Only used
	// when BatchWindow > 0.
	BatchMaxOps   int
	BatchMaxBytes int
	// Persister, when set, makes the node's term/vote/log durable
	// (typically a *storage.WAL); Restored resumes from a previous run's
	// recovered state. Both nil for a volatile node.
	Persister raft.Persister
	Restored  *raft.Restored
}

// Server is a running node.
type Server struct {
	cfg   Config
	lg    *log.Logger
	node  *raft.Node
	store *kv.Store
	tr    *transport.Transport
	httpl net.Listener
	hsrv  *http.Server
	bsrv  *binServer

	start time.Time

	// events serializes all node interaction onto the loop goroutine.
	events   chan func()
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// bat, when non-nil, group-commits Propose calls (Config.BatchWindow).
	bat *batcher.Batcher
	// errProposeTO / errReadTO are the preallocated timeout errors the
	// deadline heap delivers — no per-request error or timer allocation.
	errProposeTO error
	errReadTO    error

	// Propose-amplification counters: client commands accepted vs raft
	// entries proposed for them. Written on the loop, read anywhere.
	clientOps atomic.Uint64
	entries   atomic.Uint64

	// loop-owned state
	timers  map[timerKey]*time.Timer
	rng     *rand.Rand
	pending map[uint64][]*batcher.Waiter // log index → commit waiters (batch order)
	// dheap + dtimer replace one time.After per in-flight request: every
	// waiter's deadline sits in ONE heap swept by ONE reused timer. All
	// deadlines are now+ProposeTimeout, so they are pushed in monotone
	// order and the timer only re-arms when the heap drains.
	dheap    batcher.DeadlineHeap
	dtimer   *time.Timer
	dtimerAt time.Time
}

type timerKey struct {
	kind raft.TimerKind
	peer raft.ID
}

// Start launches the node. Call Stop to shut down.
func Start(cfg Config) (*Server, error) {
	if cfg.Tuner == nil {
		return nil, errors.New("server: need a tuner")
	}
	if cfg.ProposeTimeout == 0 {
		cfg.ProposeTimeout = 5 * time.Second
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.New(log.Writer(), fmt.Sprintf("node[%d] ", cfg.ID), log.LstdFlags|log.Lmicroseconds)
	}
	s := &Server{
		cfg:          cfg,
		lg:           lg,
		store:        kv.NewStore(),
		start:        time.Now(),
		events:       make(chan func(), 4096),
		done:         make(chan struct{}),
		timers:       map[timerKey]*time.Timer{},
		rng:          rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(cfg.ID)<<32)),
		pending:      map[uint64][]*batcher.Waiter{},
		errProposeTO: fmt.Errorf("server: propose timed out after %v", cfg.ProposeTimeout),
		errReadTO:    fmt.Errorf("server: linearizable read timed out after %v", cfg.ProposeTimeout),
	}
	s.dtimer = time.AfterFunc(time.Hour, func() { s.exec(s.sweepDeadlines) })
	s.dtimer.Stop()
	if cfg.BatchWindow > 0 {
		s.bat = batcher.New(batcher.Config{
			Window:   cfg.BatchWindow,
			MaxOps:   cfg.BatchMaxOps,
			MaxBytes: cfg.BatchMaxBytes,
			Flush: func(ops []batcher.Op, _ batcher.FlushReason) {
				s.exec(func() { s.proposeOps(ops) })
			},
		})
	}

	tr, err := transport.Start(transport.Config{
		ID:      cfg.ID,
		Listen:  cfg.Listen,
		Peers:   cfg.Peers,
		Logger:  lg,
		Handler: func(m raft.Message) { s.exec(func() { s.node.Step(m) }) },
	})
	if err != nil {
		return nil, err
	}
	s.tr = tr

	peers := make([]raft.ID, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		peers = append(peers, id)
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		peers = append(peers, cfg.ID)
	}
	node, err := raft.NewNode(raft.Config{
		ID:           cfg.ID,
		Peers:        peers,
		Runtime:      (*runtime)(s),
		Tuner:        cfg.Tuner,
		Tracer:       cfg.Tracer,
		Persister:    cfg.Persister,
		Restored:     cfg.Restored,
		Apply:        s.onApply,
		SnapshotData: s.store.MarshalSnapshot,
		RestoreSnapshot: func(data []byte, index uint64) {
			if err := s.store.RestoreSnapshot(data, index); err != nil {
				lg.Printf("snapshot restore failed: %v", err)
			}
		},
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	s.node = node

	if cfg.HTTPListen != "" {
		ln, err := net.Listen("tcp", cfg.HTTPListen)
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("server: http listen: %w", err)
		}
		s.httpl = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/kv/", s.handleKV)
		mux.HandleFunc("/status", s.handleStatus)
		s.hsrv = &http.Server{Handler: mux}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				lg.Printf("http: %v", err)
			}
		}()
	}

	if cfg.BinListen != "" {
		bs, err := startBinServer(cfg.BinListen, s.handleBin, lg)
		if err != nil {
			if s.hsrv != nil {
				s.hsrv.Close()
			}
			tr.Close()
			return nil, err
		}
		s.bsrv = bs
	}

	s.wg.Add(1)
	go s.loop()
	s.exec(func() { s.node.Start() })
	return s, nil
}

// exec enqueues fn onto the event loop (drops after shutdown).
func (s *Server) exec(fn func()) {
	select {
	case s.events <- fn:
	case <-s.done:
	}
}

func (s *Server) loop() {
	defer s.wg.Done()
	compact := time.NewTicker(5 * time.Second)
	defer compact.Stop()
	for {
		select {
		case fn := <-s.events:
			fn()
			// Any event may carry the message that costs us leadership
			// (higher-term vote or append). Fail in-flight proposals
			// immediately so no batch waits out its full ProposeTimeout
			// on an entry the new leader may overwrite.
			s.abortIfNotLeader()
		case <-compact.C:
			s.node.CompactLog(1024)
		case <-s.done:
			return
		}
	}
}

func (s *Server) onApply(ents []raft.Entry) {
	s.store.Apply(ents)
	// Resolve in index order; within a batch entry, waiters were
	// registered in op order and all committed together.
	for _, e := range ents {
		if ws, ok := s.pending[e.Index]; ok {
			delete(s.pending, e.Index)
			for _, w := range ws {
				w.Resolve(nil)
			}
		}
	}
}

// errProposalAborted unwraps to raft.ErrNotLeader so every client path
// (421 + leader hint, wire NOT_LEADER status) retries against the new
// leader; the per-command idempotence table absorbs the retry if the
// aborted entry commits anyway.
var errProposalAborted = fmt.Errorf("%w: proposal aborted by leadership change", raft.ErrNotLeader)

// abortIfNotLeader fails every registered commit waiter once this node
// is no longer leader (loop goroutine). Entries it proposed may still
// commit under the new leader — clients retry and dedupe — but they may
// equally be overwritten, so waiting is pointless either way.
func (s *Server) abortIfNotLeader() {
	if len(s.pending) == 0 || s.node.State() == raft.StateLeader {
		return
	}
	n := 0
	for idx, ws := range s.pending {
		delete(s.pending, idx)
		for _, w := range ws {
			w.Resolve(errProposalAborted)
			n++
		}
	}
	s.lg.Printf("aborted %d in-flight proposal(s) on leadership change", n)
}

// proposeOps replicates a finished batch as one raft entry (loop
// goroutine). A single op skips the OpBatch wrapper entirely, so an idle
// server's entries are byte-identical to the unbatched build and the
// amplification counters stay honest.
func (s *Server) proposeOps(ops []batcher.Op) {
	var data []byte
	if len(ops) == 1 {
		data = kv.Encode(ops[0].Cmd)
	} else {
		cmds := make([]kv.Command, len(ops))
		for i := range ops {
			cmds[i] = ops[i].Cmd
		}
		data = kv.Encode(kv.BatchCommand(cmds))
	}
	idx, err := s.node.Propose(data)
	if err != nil {
		for _, op := range ops {
			op.W.Resolve(err)
		}
		return
	}
	s.clientOps.Add(uint64(len(ops)))
	s.entries.Add(1)
	if s.store.AppliedIndex() >= idx {
		// Single-node clusters commit (and apply) synchronously inside
		// Propose — the entry is already durable before we could register
		// a waiter for it.
		for _, op := range ops {
			op.W.Resolve(nil)
		}
		return
	}
	ws := make([]*batcher.Waiter, len(ops))
	at := time.Now().Add(s.cfg.ProposeTimeout)
	for i, op := range ops {
		ws[i] = op.W
		s.dheap.Push(op.W, at, s.errProposeTO)
	}
	s.pending[idx] = ws
	s.armDeadline(at)
}

// armDeadline makes sure the sweep timer fires by at (loop goroutine).
// Deadlines arrive in monotone order, so an armed timer is already early
// enough and Reset is rare.
func (s *Server) armDeadline(at time.Time) {
	if !s.dtimerAt.IsZero() && !at.Before(s.dtimerAt) {
		return
	}
	s.dtimerAt = at
	s.dtimer.Reset(time.Until(at))
}

// sweepDeadlines expires due waiters and re-arms for the next deadline
// (loop goroutine, via dtimer).
func (s *Server) sweepDeadlines() {
	s.dtimerAt = time.Time{}
	if next := s.dheap.Expire(time.Now()); !next.IsZero() {
		s.armDeadline(next)
	}
}

// --- raft.Runtime (all methods invoked from the loop goroutine) ---

// runtime is Server viewed as a raft.Runtime; a distinct type keeps the
// Runtime methods out of Server's public API.
type runtime Server

func (r *runtime) Now() time.Duration { return time.Since(r.start) }
func (r *runtime) Rand() *rand.Rand   { return r.rng }

func (r *runtime) Send(m raft.Message) { r.tr.Send(m) }

func (r *runtime) SetTimer(kind raft.TimerKind, peer raft.ID, at time.Duration) {
	s := (*Server)(r)
	key := timerKey{kind, peer}
	if t, ok := s.timers[key]; ok {
		t.Stop()
	}
	delay := at - time.Since(s.start)
	if delay < 0 {
		delay = 0
	}
	var tm *time.Timer
	tm = time.AfterFunc(delay, func() {
		s.exec(func() {
			// A replaced timer's callback may already be queued when the
			// replacement happens; the identity check discards it.
			if cur, ok := s.timers[key]; ok && cur == tm {
				delete(s.timers, key)
				s.node.OnTimer(kind, peer)
			}
		})
	})
	s.timers[key] = tm
}

func (r *runtime) CancelTimer(kind raft.TimerKind, peer raft.ID) {
	s := (*Server)(r)
	key := timerKey{kind, peer}
	if t, ok := s.timers[key]; ok {
		t.Stop()
		delete(s.timers, key)
	}
}

// --- client API ---

// Status is the /status payload.
type Status struct {
	ID        raft.ID `json:"id"`
	State     string  `json:"state"`
	Term      uint64  `json:"term"`
	Leader    raft.ID `json:"leader"`
	Committed uint64  `json:"committed"`
	Applied   uint64  `json:"applied"`
	EtMs      float64 `json:"et_ms"`
	RandTOMs  float64 `json:"randomized_timeout_ms"`
	// GroupCommit reports propose batching (entries vs client commands,
	// batch depths, flush reasons).
	GroupCommit BatchStats `json:"group_commit"`
}

// BatchStats reports group-commit activity on the propose path.
type BatchStats struct {
	batcher.Stats
	// ClientOps counts commands accepted into the propose path; Entries
	// counts raft entries proposed for them. Their ratio is the propose
	// amplification — 1.0 unbatched, pushed below 1 by group commit.
	ClientOps uint64 `json:"client_ops"`
	Entries   uint64 `json:"entries"`
}

// ProposeAmp is raft entries per client command (0 when idle).
func (b BatchStats) ProposeAmp() float64 {
	if b.ClientOps == 0 {
		return 0
	}
	return float64(b.Entries) / float64(b.ClientOps)
}

// BatchStats snapshots the group-commit counters.
func (s *Server) BatchStats() BatchStats {
	st := BatchStats{ClientOps: s.clientOps.Load(), Entries: s.entries.Load()}
	if s.bat != nil {
		st.Stats = s.bat.Stats()
	}
	return st
}

// errShutdown is what in-flight requests see when Stop wins the race.
var errShutdown = errors.New("server: shut down")

// Propose replicates a command and waits for it to commit locally. With
// BatchWindow set it joins the open group-commit batch; either way the
// timeout comes from the shared deadline heap, not a per-call timer.
func (s *Server) Propose(cmd kv.Command) error {
	w := batcher.NewWaiter()
	if s.bat != nil {
		s.bat.Add(cmd, w)
	} else {
		s.exec(func() { s.proposeOps([]batcher.Op{{Cmd: cmd, W: w}}) })
	}
	select {
	case err := <-w.C():
		return err
	case <-s.done:
		return errShutdown
	}
}

// Get reads a key from the local store (leader reads are fresh up to the
// apply point, as in the paper's etcd usage).
func (s *Server) Get(key string) ([]byte, bool) { return s.store.Get(key) }

// ErrReadAborted reports a linearizable read cancelled by leadership loss;
// clients retry against the new leader.
var ErrReadAborted = errors.New("server: read aborted by leadership change")

// GetLinearizable reads a key with linearizable semantics: the value is
// served only after the leader confirmed its authority past the read's
// registration point. With lease=true the check-quorum lease short-cuts
// the quorum round when it still holds (etcd's default); the lease window
// is the election timeout, i.e. the *tuned* Et under Dynatune.
func (s *Server) GetLinearizable(key string, lease bool) ([]byte, bool, error) {
	if err := s.readBarrier(lease); err != nil {
		return nil, false, err
	}
	v, ok := s.store.Get(key)
	return v, ok, nil
}

// readBarrier blocks until this node's leadership is confirmed past the
// registration point (lease short-cut or full ReadIndex quorum round).
// Local store reads issued after it returns carry the leader-local read
// guarantee; the binary multiget amortizes one barrier over many keys.
func (s *Server) readBarrier(lease bool) error {
	w := batcher.NewWaiter()
	s.exec(func() {
		cb := func(_ uint64, ok bool) {
			if ok {
				w.Resolve(nil)
			} else {
				w.Resolve(ErrReadAborted)
			}
		}
		var err error
		if lease {
			if err = s.node.LeaseRead(cb); errors.Is(err, raft.ErrLeaseExpired) {
				err = s.node.ReadIndex(cb)
			}
		} else {
			err = s.node.ReadIndex(cb)
		}
		if err != nil {
			w.Resolve(err)
			return
		}
		at := time.Now().Add(s.cfg.ProposeTimeout)
		s.dheap.Push(w, at, s.errReadTO)
		s.armDeadline(at)
	})
	select {
	case err := <-w.C():
		return err
	case <-s.done:
		return errShutdown
	}
}

// Status snapshots the node state (loop-synchronized).
func (s *Server) Status() Status {
	ch := make(chan Status, 1)
	s.exec(func() {
		ch <- Status{
			ID:        s.node.ID(),
			State:     s.node.State().String(),
			Term:      s.node.Term(),
			Leader:    s.node.Lead(),
			Committed: s.node.Log().Committed(),
			Applied:   s.node.Log().Applied(),
			EtMs:        float64(s.node.ElectionTimeoutBase()) / float64(time.Millisecond),
			RandTOMs:    float64(s.node.RandomizedTimeout()) / float64(time.Millisecond),
			GroupCommit: s.BatchStats(),
		}
	})
	select {
	case st := <-ch:
		return st
	case <-time.After(2 * time.Second):
		return Status{ID: s.cfg.ID, State: "unresponsive"}
	}
}

// Addrs returns the transport listen addresses.
func (s *Server) Addrs() transport.PeerAddr { return s.tr.Addrs() }

// HTTPAddr returns the client API address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpl == nil {
		return ""
	}
	return s.httpl.Addr().String()
}

// BinAddr returns the binary client API address ("" if disabled).
func (s *Server) BinAddr() string {
	if s.bsrv == nil {
		return ""
	}
	return s.bsrv.addr()
}

// SetPeer updates a peer's transport addresses.
func (s *Server) SetPeer(id raft.ID, pa transport.PeerAddr) { s.tr.SetPeer(id, pa) }

// Store exposes the kv state machine.
func (s *Server) Store() *kv.Store { return s.store }

// maxValueBytes caps PUT/POST value sizes on both the node API and the
// sharded Front; larger bodies are rejected with 413, never truncated.
const maxValueBytes = 1 << 20

// misdirected answers 421 with the X-Raft-Leader hint — the one protocol
// clients (dynactl, the sharded Front) follow to find the leader; every
// leader-only branch must emit it through here so the contract cannot
// drift.
func (s *Server) misdirected(w http.ResponseWriter, msg string) {
	w.Header().Set("X-Raft-Leader", fmt.Sprint(s.Status().Leader))
	http.Error(w, msg, http.StatusMisdirectedRequest)
}

// readValue reads a PUT/POST value in full (a single Read may return a
// partial TCP segment), rejecting oversize bodies with 413 rather than
// truncating. On false the response has been written.
func readValue(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxValueBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxValueBytes {
		http.Error(w, fmt.Sprintf("value exceeds %d bytes", maxValueBytes), http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

func (s *Server) handleKV(w http.ResponseWriter, req *http.Request) {
	key := strings.TrimPrefix(req.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	switch req.Method {
	case http.MethodGet:
		var v []byte
		var ok bool
		switch c := req.URL.Query().Get("consistency"); c {
		case "", "local":
			v, ok = s.Get(key)
		case "linearizable", "lease":
			var err error
			v, ok, err = s.GetLinearizable(key, c == "lease")
			if errors.Is(err, raft.ErrNotLeader) || errors.Is(err, raft.ErrNotReady) || errors.Is(err, ErrReadAborted) {
				s.misdirected(w, err.Error())
				return
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		default:
			http.Error(w, "bad consistency (want local|linearizable|lease)", http.StatusBadRequest)
			return
		}
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(v) //nolint:errcheck // best-effort response body
	case http.MethodPut, http.MethodPost:
		body, ok := readValue(w, req)
		if !ok {
			return
		}
		err := s.Propose(kv.Command{Op: kv.OpPut, Key: key, Value: body})
		if errors.Is(err, raft.ErrNotLeader) {
			s.misdirected(w, "not the leader")
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		err := s.Propose(kv.Command{Op: kv.OpDelete, Key: key})
		if errors.Is(err, raft.ErrNotLeader) {
			s.misdirected(w, "not the leader")
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Status()) //nolint:errcheck // best-effort response body
}

// Stop shuts the server down. It is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		if s.bsrv != nil {
			s.bsrv.close() // graceful: drains in-flight binary requests
		}
		if s.bat != nil {
			// Close the batcher: queued and future Adds fail fast instead
			// of sitting in a window no one will flush.
			s.bat.Drain(errShutdown)
		}
		close(s.done)
		if s.hsrv != nil {
			s.hsrv.Close()
		}
		s.tr.Close()
		s.wg.Wait()
		// Stop loop-owned timers; the loop has exited, so this is safe.
		s.dtimer.Stop()
		for _, t := range s.timers {
			t.Stop()
		}
	})
}
