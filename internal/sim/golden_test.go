package sim

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"
)

// goldenTrace drives a canonical self-replicating schedule/cancel workload
// through a fresh engine and folds every fired event's (id, virtual time)
// into an FNV-1a hash. The workload exercises the paths a real simulation
// hits: nested scheduling from inside events, equal-timestamp ties,
// cancellation of pending events, and cancellation of already-fired
// handles (which must be a no-op).
func goldenTrace(seed int64) (hash uint64, fired uint64, now time.Duration) {
	e := NewEngine(seed)
	rng := e.Rand()
	h := fnv.New64a()
	var buf [16]byte
	var live []Handle
	nextID := 0
	var spawn func(id int) func()
	spawn = func(id int) func() {
		return func() {
			binary.LittleEndian.PutUint64(buf[:8], uint64(id))
			binary.LittleEndian.PutUint64(buf[8:], uint64(e.Now()))
			h.Write(buf[:])
			if e.Fired() > 5000 {
				return
			}
			for k := 0; k < 2; k++ {
				nextID++
				live = append(live, e.After(time.Duration(rng.Intn(2000))*time.Microsecond, spawn(nextID)))
			}
			// Cancel a random handle; some refer to events that already
			// fired, pinning cancel-after-fire as a no-op.
			if len(live) > 0 && rng.Intn(3) == 0 {
				e.Cancel(live[rng.Intn(len(live))])
			}
		}
	}
	e.Schedule(0, spawn(0))
	e.Run(10 * time.Second)
	return h.Sum64(), e.Fired(), e.Now()
}

// The constants below were captured from the container/heap-based engine
// that shipped before the allocation-free rewrite. Any scheduler change
// that alters event ordering, cancellation semantics, or the fired count
// for a fixed seed breaks this test.
const (
	goldenTraceHash  = uint64(0x5e7292fc29c3b6fc)
	goldenTraceFired = uint64(9271)
)

func TestGoldenTraceMatchesPreRewriteEngine(t *testing.T) {
	hash, fired, now := goldenTrace(99)
	t.Logf("seed 99: hash %#x fired %d now %v", hash, fired, now)
	if hash != goldenTraceHash || fired != goldenTraceFired {
		t.Fatalf("golden trace diverged: hash %#x fired %d, want hash %#x fired %d",
			hash, fired, goldenTraceHash, goldenTraceFired)
	}
}

// TestGoldenTraceDeterministic pins that two runs with the same seed are
// bit-for-bit identical regardless of the golden constants.
func TestGoldenTraceDeterministic(t *testing.T) {
	h1, f1, n1 := goldenTrace(7)
	h2, f2, n2 := goldenTrace(7)
	if h1 != h2 || f1 != f2 || n1 != n2 {
		t.Fatalf("same seed diverged: (%#x,%d,%v) vs (%#x,%d,%v)", h1, f1, n1, h2, f2, n2)
	}
	h3, _, _ := goldenTrace(8)
	if h3 == h1 {
		t.Fatal("different seeds produced identical traces — rng unused?")
	}
}
