package raft

import (
	"errors"
	"fmt"
)

// ErrTransferring is returned by Propose while a leadership transfer is
// in flight: accepting new entries would force the target to catch up
// again and stall the handover (etcd blocks proposals the same way).
var ErrTransferring = errors.New("raft: leadership transfer in progress")

// ErrUnknownPeer is returned when a transfer target is not a cluster
// member.
var ErrUnknownPeer = errors.New("raft: unknown peer")

// TransferLeadership hands leadership to peer with near-zero
// out-of-service time: once the target's log is caught up, the leader
// sends MsgTimeoutNow and the target campaigns immediately, skipping
// pre-vote and overriding leases. Intended for planned maintenance —
// the complement of the crash failovers the paper measures.
//
// The transfer aborts automatically (and leadership stays put) if the
// target does not take over within one election timeout.
func (n *Node) TransferLeadership(peer ID) error {
	if n.state != StateLeader {
		return ErrNotLeader
	}
	if peer == n.id {
		return nil // already the leader
	}
	pr, ok := n.prs[peer]
	if !ok {
		return ErrUnknownPeer
	}
	if !n.voters[peer] {
		// A learner cannot win an election; handing it MsgTimeoutNow would
		// just burn a term (etcd refuses the same way).
		return fmt.Errorf("%w: %d is not a voter", ErrUnknownPeer, peer)
	}
	n.transferee = peer
	n.trace(EventTransfer)
	if pr.match == n.log.LastIndex() {
		n.sendTimeoutNow(peer)
	} else {
		// Catch the target up first; handleAppendResp fires the transfer
		// when its match reaches our last index.
		n.sendAppend(peer)
	}
	return nil
}

// Transferring reports whether a leadership transfer is in flight.
func (n *Node) Transferring() bool {
	return n.state == StateLeader && n.transferee != None
}

func (n *Node) sendTimeoutNow(peer ID) {
	n.send(Message{Type: MsgTimeoutNow, To: peer, Term: n.term})
}

// handleTimeoutNow makes the transfer target campaign immediately: no
// pre-vote round, and its vote requests carry the Transfer flag so voters
// ignore their leader lease.
func (n *Node) handleTimeoutNow(m Message) {
	if n.state == StateLeader {
		return // already leading (duplicate delivery)
	}
	n.becomeCandidate()
	n.trace(EventCampaign)
	if n.quorum == 1 {
		n.becomeLeader()
		return
	}
	last, lastTerm := n.log.LastIndex(), n.log.LastTerm()
	for _, p := range n.peers {
		n.send(Message{
			Type:     MsgVote,
			To:       p,
			Term:     n.term,
			Index:    last,
			LogTerm:  lastTerm,
			Transfer: true,
		})
	}
}

// abortTransfer clears a pending transfer (target died or timed out).
func (n *Node) abortTransfer() {
	n.transferee = None
}
