package scenario

import (
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/workload"
)

// runRamp is the §IV-B2 open-loop RPS ramp against a single-group
// cluster, repeated Reps times with distinct seeds; per-step throughput
// is averaged and its standard deviation reported. Repetitions run on the
// sharded trial runner (each on its own engine) and accumulate in rep
// order, so output is byte-identical for any worker count. The fault
// schedule (if any) is armed at ramp start, which is how the
// under-load fault scenarios (rolling restarts, cascades) compose with
// the workload.
func runRamp(spec Spec, env Env) *RampResult {
	ramp := spec.Workload.Ramp()
	clientRTT := spec.Workload.ClientRTT.D()
	if clientRTT <= 0 {
		clientRTT = 100 * time.Millisecond
	}
	reps := spec.Reps
	if reps < 1 {
		reps = 1
	}
	type repOut struct {
		steps         []Step
		proposeErrors uint64
		lost          uint64
		pending       int
	}
	outs := make([]repOut, reps)
	env.runShards(reps, func(rep int) {
		c := env.NewCluster(ShardSeed(spec.Seed, rep))
		lg := env.NewLoadGen(c, ramp, clientRTT)
		c.Start()
		if c.WaitLeader(30*time.Second) == nil {
			panic("throughput ramp: no leader")
		}
		c.Run(3 * time.Second) // settle + tuner warmup
		armFaults(c, c.Now(), spec.Faults)
		lg.Start()
		c.Run(ramp.Duration() + 5*time.Second) // drain tail
		outs[rep] = repOut{
			steps:         lg.Results(),
			proposeErrors: lg.ProposeErrors(),
			lost:          lg.Lost(),
			pending:       lg.Pending(),
		}
	})
	type acc struct {
		thr metrics.Welford
		lat metrics.Welford
	}
	accs := make([]acc, ramp.Steps)
	res := &RampResult{Variant: env.variantName(spec)}
	for _, rep := range outs {
		for i, s := range rep.steps {
			accs[i].thr.Add(s.ThroughputRS)
			if s.Completed > 0 {
				accs[i].lat.Add(s.LatencyMs)
			}
		}
		res.ProposeErrors += rep.proposeErrors
		res.Lost += rep.lost
		res.Pending += rep.pending
	}
	res.Points = make([]RampPoint, ramp.Steps)
	for i := range accs {
		rps, _ := ramp.RPSAt(time.Duration(i)*ramp.StepDuration + 1)
		res.Points[i] = RampPoint{
			OfferedRPS:    rps,
			ThroughputRS:  accs[i].thr.Mean(),
			ThroughputStd: accs[i].thr.Std(),
			LatencyMs:     accs[i].lat.Mean(),
		}
	}
	return res
}

// runShardRampReps repeats the sharded multi-Raft ramp across Reps
// derived seeds on the trial runner (each repetition a full independent
// multi-group simulation on its own engine), returning per-rep results in
// seed order.
func runShardRampReps(spec Spec, env Env) []ShardRampResult {
	ramp := spec.Workload.Ramp()
	reps := spec.Reps
	if reps < 1 {
		reps = 1
	}
	outs := make([]ShardRampResult, reps)
	env.runShards(reps, func(rep int) {
		outs[rep] = runShardRamp(spec, env, ramp, ShardSeed(spec.Seed, rep))
	})
	return outs
}

// runShardRamp runs one keyed open-loop ramp against a sharded cluster:
// start all groups, wait for every leader, settle, arm the rebalance
// schedule, drive the ramp, drain, aggregate — the multi-group mirror of
// runRamp. A migration still draining when the ramp's tail ends gets a
// bounded grace window to converge so the rebalance report is complete.
func runShardRamp(spec Spec, env Env, ramp workload.Ramp, seed int64) ShardRampResult {
	s, lg := env.NewMulti(seed, ramp)
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		panic("shard: not all groups elected a leader")
	}
	s.Run(3 * time.Second) // settle + tuner warmup
	armShardFaults(s, s.Engine().Now(), spec.Faults)
	// Sample the worst-replica live log once a second for the run's peak:
	// with a snapshot policy armed this stays bounded by the policy's
	// threshold no matter how long the ramp runs. Read-only, so the
	// sampler cannot perturb the simulation's determinism.
	var peakLogEntries int
	var peakLogBytes uint64
	var sampleLogs func()
	sampleLogs = func() {
		e, b := s.MaxLogStats()
		if e > peakLogEntries {
			peakLogEntries = e
		}
		if b > peakLogBytes {
			peakLogBytes = b
		}
		s.Engine().After(time.Second, sampleLogs)
	}
	sampleLogs()
	var check *invariantChecker
	if spec.Invariants != nil {
		// Armed at ramp start, before the generator: the ack feed must be
		// wired before the first proposal, and the probes must cover every
		// fault and migration window of the measurement.
		check = newInvariantChecker(*spec.Invariants, s, s.Engine())
		lg.SetOnComplete(check.onComplete)
		check.arm()
	}
	lg.Start()
	s.Run(ramp.Duration() + 5*time.Second) // drain tail
	for i := 0; i < 600 && s.Rebalancing(); i++ {
		s.Run(100 * time.Millisecond)
	}

	res := ShardRampResult{
		Groups:        s.Groups(),
		Points:        lg.Results(),
		P99Ms:         lg.P99Ms(),
		Completed:     lg.TotalCompleted(),
		ProposeErrors: lg.ProposeErrors(),
		Lost:          lg.Lost(),
		Pending:       lg.Pending(),
		MaxLogEntries: peakLogEntries,
		MaxLogBytes:   peakLogBytes,
	}
	res.AggThroughput = float64(res.Completed) / ramp.Duration().Seconds()
	for _, p := range res.Points {
		if p.ThroughputRS > res.PeakThroughput {
			res.PeakThroughput = p.ThroughputRS
		}
	}
	if hasRebalance(spec.Faults) {
		pre, mid, post := lg.PhaseLatencies()
		res.Rebalance = &RebalanceReport{
			Moves: s.Rebalances(), Pre: pre, Mid: mid, Post: post,
			// A migration outliving the grace window (only possible with a
			// cutover deadline beyond it) is flagged rather than silently
			// missing from Moves.
			Unfinished: s.Rebalancing(),
		}
	}
	if check != nil {
		// Post-heal settle, then the final durability / double-apply /
		// convergence sweep. Probes are stopped first so the settle window
		// measures the system, not the checker.
		check.stop()
		s.Run(check.cfg.Settle.D())
		res.Invariants = check.report()
	}
	return res
}
