// Package geo supplies the wide-area network model for the paper's real
// distributed experiment (§IV-D): five AWS regions — Tokyo, London,
// California, Sydney, São Paulo — with measured public inter-region RTTs.
// The paper's AWS testbed is substituted by feeding this matrix into the
// network simulator, which preserves the asymmetric-RTT topology that
// drives per-pair tuning while eliminating the NTP clock-skew the authors
// flag as a measurement caveat.
package geo

import (
	"fmt"
	"time"

	"dynatune/internal/netsim"
)

// Region identifies an AWS region used in the paper.
type Region int

const (
	Tokyo      Region = iota // ap-northeast-1
	London                   // eu-west-2
	California               // us-west-1
	Sydney                   // ap-southeast-2
	SaoPaulo                 // sa-east-1
	numRegions
)

// Regions lists the paper's five regions in order.
var Regions = []Region{Tokyo, London, California, Sydney, SaoPaulo}

func (r Region) String() string {
	switch r {
	case Tokyo:
		return "tokyo"
	case London:
		return "london"
	case California:
		return "california"
	case Sydney:
		return "sydney"
	case SaoPaulo:
		return "sao-paulo"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// rttMS holds typical public inter-region RTTs in milliseconds
// (symmetric), from published cloud latency measurements; the diagonal is
// the intra-region RTT.
var rttMS = [numRegions][numRegions]int{
	//            Tokyo London Calif Sydney SaoPaulo
	/*Tokyo*/ {2, 210, 105, 105, 255},
	/*London*/ {210, 1, 135, 265, 185},
	/*Calif.*/ {105, 135, 1, 140, 170},
	/*Sydney*/ {105, 265, 140, 1, 310},
	/*SaoPa.*/ {255, 185, 170, 310, 1},
}

// RTT returns the nominal round-trip time between two regions.
func RTT(a, b Region) time.Duration {
	return time.Duration(rttMS[a][b]) * time.Millisecond
}

// LinkParams returns netsim parameters for the a→b path. Jitter and loss
// model ordinary public-internet conditions between cloud regions
// (cf. Haq et al. and Mok et al., cited in §II-C): jitter scales with
// distance; loss is a small base rate.
func LinkParams(a, b Region, jitterFrac, loss float64) netsim.Params {
	rtt := RTT(a, b)
	return netsim.Params{
		RTT:    rtt,
		Jitter: time.Duration(float64(rtt) * jitterFrac / 2),
		Loss:   loss,
	}
}

// ApplyToNetwork configures every directed link of a network whose node i
// lives in regions[i].
func ApplyToNetwork[T any](nw *netsim.Network[T], regions []Region, jitterFrac, loss float64) {
	for i := range regions {
		for j := range regions {
			if i == j {
				continue
			}
			nw.SetProfile(i, j, netsim.Constant(LinkParams(regions[i], regions[j], jitterFrac, loss)))
		}
	}
}

// MaxRTTFrom returns the largest RTT from region a to any of the given
// regions — the broadcastTime lower bound the original Raft paper uses to
// reason about election timeouts (§II-B).
func MaxRTTFrom(a Region, regions []Region) time.Duration {
	var m time.Duration
	for _, b := range regions {
		if b == a {
			continue
		}
		if r := RTT(a, b); r > m {
			m = r
		}
	}
	return m
}

// MedianQuorumRTT returns, for a leader in region a, the RTT to the
// f+1-th closest peer — the latency that actually bounds commit, since a
// quorum only needs the nearest half of the followers.
func MedianQuorumRTT(a Region, regions []Region) time.Duration {
	var rtts []time.Duration
	for _, b := range regions {
		if b == a {
			continue
		}
		rtts = append(rtts, RTT(a, b))
	}
	// insertion sort (n ≤ 4 here)
	for i := 1; i < len(rtts); i++ {
		for j := i; j > 0 && rtts[j] < rtts[j-1]; j-- {
			rtts[j], rtts[j-1] = rtts[j-1], rtts[j]
		}
	}
	if len(rtts) == 0 {
		return 0
	}
	need := (len(rtts)+1)/2 + 1 - 1 // f+1 responders minus the leader itself
	if need > len(rtts) {
		need = len(rtts)
	}
	return rtts[need-1]
}
