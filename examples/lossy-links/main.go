// Lossy links (paper §IV-C2): packet loss climbs from 0 % to 30 % and
// back. Dynatune computes K = ⌈log_p(1−x)⌉ from the measured loss rate
// and squeezes the heartbeat interval h = Et/K so that at least one beat
// still lands inside every timeout window with probability x — then
// relaxes h again when the loss clears, saving leader CPU.
//
//	go run ./examples/lossy-links
package main

import (
	"fmt"
	"math"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
)

func main() {
	// Compressed loss sweep: 0→10→20→30→20→10→0 %, 30 s holds, RTT 200 ms.
	profile := netsim.LossSteps(
		netsim.Params{RTT: 200 * time.Millisecond, Jitter: 2 * time.Millisecond},
		30*time.Second, 0, 0.10, 0.20, 0.30, 0.20, 0.10, 0)
	horizon := 3*time.Minute + 30*time.Second

	fmt.Println("theory (x=0.999): p → K = ⌈ln(0.001)/ln(p)⌉")
	for _, p := range []float64{0.10, 0.20, 0.30} {
		fmt.Printf("  p=%.0f%% → K=%d\n", p*100, int(math.Ceil(math.Log(0.001)/math.Log(p))))
	}
	fmt.Println()

	for _, variant := range []cluster.Variant{
		cluster.VariantDynatune(dynatune.Options{}),
		cluster.VariantFixK(10),
	} {
		res := cluster.RunFluctuation(cluster.Options{
			N: 5, Seed: 3, Variant: variant, Profile: profile,
		}, horizon, 10*time.Second)

		fmt.Printf("=== %s ===\n", res.Variant)
		fmt.Printf("unnecessary elections: %d (paper: none for either system)\n", res.Elections)
		fmt.Println("  t      loss%   leader h    measured-loss%")
		for _, t := range []time.Duration{
			20 * time.Second, 50 * time.Second, 80 * time.Second, 110 * time.Second,
			140 * time.Second, 170 * time.Second, 200 * time.Second,
		} {
			loss, _ := res.MeasuredLossPct.At(t)
			h, _ := res.LeaderHMs.At(t)
			seg := profile.At(t)
			fmt.Printf("  %4.0fs   %3.0f%%   %6.0fms   %5.1f%%\n",
				t.Seconds(), seg.Loss*100, h, loss)
		}
		fmt.Println()
	}
	fmt.Println("(paper Fig. 7a: Dynatune h tracks the sweep; Fix-K stays flat at Et/10)")
}
