package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/raft"
)

// runReads issues linearizable reads against the leader at a fixed
// interval and measures confirmation latency on the virtual clock. The
// interesting comparison is Raft vs Dynatune under the lease mode: the
// lease window equals the election timeout, so a tuned-down Et shrinks
// the lease while the tuned h=Et/K stretches the gap between refreshes —
// fast failover is traded against cheap reads.
func runReads(spec Spec, env Env) *ReadsResult {
	mode := ReadModeIndex
	if spec.Reads.Mode == "lease" {
		mode = ReadModeLease
	}
	every := spec.Reads.Every.D()
	c := env.NewCluster(spec.Seed)
	c.Start()
	if c.WaitLeader(30*time.Second) == nil {
		panic(fmt.Sprintf("read latency(%s): no leader", env.variantName(spec)))
	}
	c.Run(3 * time.Second) // settle + tuner warm-up
	eng := c.Engine()
	res := &ReadsResult{Variant: env.variantName(spec), Mode: mode}

	issue := func() {
		lead := c.Leader()
		if lead == nil {
			res.Failed++
			return
		}
		res.Issued++
		start := eng.Now()
		cb := func(_ uint64, ok bool) {
			if !ok {
				res.Failed++
				return
			}
			res.LatencyMs = append(res.LatencyMs, float64(eng.Now()-start)/float64(time.Millisecond))
		}
		var err error
		switch mode {
		case ReadModeIndex:
			err = lead.ReadIndex(cb)
		case ReadModeLease:
			err = lead.LeaseRead(cb)
			if err == nil {
				res.LeaseHits++
			} else if err == raft.ErrLeaseExpired {
				res.Fallbacks++
				err = lead.ReadIndex(cb)
			}
		}
		if err != nil {
			res.Failed++
		}
	}
	for i := 0; i < spec.Reads.Reads; i++ {
		issue()
		c.Run(every)
	}
	c.Run(2 * time.Second) // drain confirmations
	return res
}
