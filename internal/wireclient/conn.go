package wireclient

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynatune/internal/wire"
)

// ErrClosed reports an operation on a closed connection.
var ErrClosed = errors.New("wireclient: connection closed")

// DefaultCoalesceWindow is how long a queued request may wait for
// companions before its batch is flushed. Small enough to be invisible
// next to a replication round trip, large enough that concurrent callers
// on one connection share a single syscall.
const DefaultCoalesceWindow = 200 * time.Microsecond

// flushThreshold flushes a batch early once this many bytes are queued,
// bounding memory and keeping the pipe busy under heavy load.
const flushThreshold = 64 << 10

// ConnConfig tunes a single pipelined connection.
type ConnConfig struct {
	// CoalesceWindow overrides DefaultCoalesceWindow; < 0 disables
	// coalescing (every request flushes immediately).
	CoalesceWindow time.Duration
	// ReadBuffer sizes the read side (default 64 KiB).
	ReadBuffer int
}

type call struct {
	op Op
	cb func(Response, error)
}

// Conn is one pipelined binary-protocol connection. Many goroutines may
// issue requests concurrently; a writer goroutine coalesces them into
// batched writes and a reader goroutine demultiplexes responses by
// request id, so slow requests never block fast ones behind them.
type Conn struct {
	nc     net.Conn
	window time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]call
	wbuf    []byte
	err     error
	closed  bool

	kick chan struct{}
	done chan struct{} // closed when the reader exits
	wg   sync.WaitGroup
}

// NewConn wraps an established net.Conn.
func NewConn(nc net.Conn, cfg ConnConfig) *Conn {
	w := cfg.CoalesceWindow
	if w == 0 {
		w = DefaultCoalesceWindow
	} else if w < 0 {
		w = 0
	}
	rb := cfg.ReadBuffer
	if rb <= 0 {
		rb = 64 << 10
	}
	c := &Conn{
		nc:      nc,
		window:  w,
		pending: make(map[uint64]call),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop(rb)
	return c
}

// Dial connects to addr and returns a pipelined connection.
func Dial(addr string, timeout time.Duration, cfg ConnConfig) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // batching is ours, not Nagle's
	}
	return NewConn(nc, cfg), nil
}

// Do issues req asynchronously; cb runs exactly once (from the reader
// goroutine on response, or from whichever goroutine observes the
// connection failing). The request id is assigned here — the caller's
// r.ID is ignored. cb must not block.
func (c *Conn) Do(r *Request, cb func(Response, error)) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		cb(Response{}, err)
		return
	}
	c.nextID++
	r.ID = c.nextID
	c.pending[r.ID] = call{op: r.Op, cb: cb}
	c.wbuf = AppendRequest(c.wbuf, r)
	full := len(c.wbuf) >= flushThreshold
	c.mu.Unlock()
	if full || c.window == 0 {
		c.kickWriter()
	} else {
		// Lazy kick: the writer sleeps the coalesce window after waking,
		// so one kick covers every request queued inside the window.
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
}

// Call issues req and waits for its response.
func (c *Conn) Call(r *Request) (Response, error) {
	type result struct {
		resp Response
		err  error
	}
	ch := make(chan result, 1)
	c.Do(r, func(resp Response, err error) {
		ch <- result{resp, err}
	})
	res := <-ch
	return res.resp, res.err
}

func (c *Conn) kickWriter() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Pending reports how many requests are awaiting responses.
func (c *Conn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Err returns the terminal connection error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; in-flight requests fail with ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	c.wg.Wait()
	return nil
}

// fail marks the connection broken and fires every pending callback.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pend := c.pending
	c.pending = nil
	c.wbuf = nil
	c.mu.Unlock()
	c.nc.Close()
	c.kickWriter() // let the writer observe closure
	for _, cl := range pend {
		cl.cb(Response{}, err)
	}
}

func (c *Conn) writeLoop() {
	defer c.wg.Done()
	bw := bufio.NewWriterSize(c.nc, flushThreshold+4<<10)
	for {
		select {
		case <-c.kick:
		case <-c.done:
			return
		}
		if c.window > 0 {
			time.Sleep(c.window) // gather companions
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		buf := c.wbuf
		c.wbuf = wire.GetBuf(4 << 10)
		c.mu.Unlock()
		if len(buf) == 0 {
			wire.PutBuf(buf)
			continue
		}
		_, err := bw.Write(buf)
		if err == nil {
			err = bw.Flush()
		}
		wire.PutBuf(buf)
		if err != nil {
			c.fail(fmt.Errorf("wireclient: write: %w", err))
			return
		}
	}
}

func (c *Conn) readLoop(bufSize int) {
	defer c.wg.Done()
	defer close(c.done)
	br := bufio.NewReaderSize(c.nc, bufSize)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			c.fail(readErr(err))
			return
		}
		if n > MaxFrame {
			c.fail(fmt.Errorf("%w: %d-byte frame", ErrCorrupt, n))
			return
		}
		buf := wire.GetBuf(int(n))[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			wire.PutBuf(buf)
			c.fail(readErr(err))
			return
		}
		resp, err := DecodeResponse(buf)
		wire.PutBuf(buf) // DecodeResponse copies; safe to recycle
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		cl, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			cl.cb(resp, nil)
		}
	}
}

func readErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("wireclient: connection lost: %w", err)
	}
	return fmt.Errorf("wireclient: read: %w", err)
}
