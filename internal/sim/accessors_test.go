package sim

import (
	"testing"
	"time"
)

func TestHandleValidity(t *testing.T) {
	var zero Handle
	if zero.Valid() {
		t.Fatal("zero handle reports valid")
	}
	eng := NewEngine(1)
	h := eng.Schedule(time.Second, func() {})
	if !h.Valid() {
		t.Fatal("scheduled handle reports invalid")
	}
	eng.Cancel(h)
	if !h.Valid() {
		t.Fatal("Valid is about referencing an event, not liveness")
	}
}

func TestProcChargeDelaysFutureWork(t *testing.T) {
	eng := NewEngine(1)
	p := NewProc(eng)
	// Charging 50ms of send work makes later Exec'd work finish after the
	// backlog drains, not at its nominal cost.
	p.Charge(50 * time.Millisecond)
	var doneAt time.Duration
	p.Exec(10*time.Millisecond, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != 60*time.Millisecond {
		t.Fatalf("work completed at %v, want 60ms (50ms backlog + 10ms cost)", doneAt)
	}
	if p.Busy() != 60*time.Millisecond {
		t.Fatalf("busy = %v, want 60ms", p.Busy())
	}
}

func TestProcChargeIgnoredWhilePausedOrFree(t *testing.T) {
	eng := NewEngine(1)
	p := NewProc(eng)
	p.Charge(0)
	p.Charge(-time.Second)
	if p.Busy() != 0 {
		t.Fatalf("non-positive charges accrued busy %v", p.Busy())
	}
	p.Pause()
	if !p.Paused() {
		t.Fatal("Paused() false after Pause")
	}
	p.Charge(time.Second)
	if p.Busy() != 0 {
		t.Fatal("paused processor accrued work")
	}
	p.Resume()
	if p.Paused() {
		t.Fatal("Paused() true after Resume")
	}
}

func TestProcChargeAfterIdleGapStartsFromNow(t *testing.T) {
	eng := NewEngine(1)
	p := NewProc(eng)
	p.Charge(10 * time.Millisecond)
	eng.Run(100 * time.Millisecond) // backlog drains, processor idles
	p.Charge(10 * time.Millisecond)
	var doneAt time.Duration
	p.Exec(0, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	// The second charge starts at t=100ms, not stacked on the first.
	if doneAt != 110*time.Millisecond {
		t.Fatalf("work completed at %v, want 110ms", doneAt)
	}
}
