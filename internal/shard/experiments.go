package shard

import (
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/scenario"
	"dynatune/internal/workload"
)

// RampResult aggregates one sharded ramp run — the engine's unified
// sharded-throughput result (aggregate/peak throughput, tail latency,
// and the Lost/Pending accounting that distinguishes leader-churn dips
// from capacity loss).
type RampResult = scenario.ShardRampResult

// ScenarioEnv binds the scenario engine to sharded clusters built from
// opts + load; the engine derives per-repetition seeds and drives the
// multi-group testbed through the MultiCluster/MultiLoadGen interfaces.
func (o Options) ScenarioEnv(load LoadOptions) scenario.Env {
	return scenario.Env{
		Variant: o.Variant.Name,
		NewMulti: func(seed int64, ramp workload.Ramp) (scenario.MultiCluster, scenario.MultiLoadGen) {
			so := o
			so.Seed = seed
			s := New(so)
			return s, NewLoadGen(s, ramp, load)
		},
		Workers:   cluster.TrialWorkers(),
		RunShards: cluster.RunShardsOn,
	}
}

// specFor seeds the sharded throughput spec; the caller sets reps.
func specFor(o Options, ramp workload.Ramp, load LoadOptions) scenario.Spec {
	d := o.withDefaults()
	w := scenario.WorkloadFrom(ramp, load.ClientRTT)
	w.Keys = load.Keys
	w.Zipf = load.Zipf
	net := scenario.NetFrom(d.Profile)
	if d.Profile.Segments == nil {
		// Descriptive only: the group builder applies the testbed default.
		net = scenario.Stable(100 * time.Millisecond)
	}
	return scenario.Spec{
		Name:    "sharded-ramp",
		Measure: scenario.MeasureThroughput,
		Topology: scenario.Topology{
			N: d.NodesPerGroup, Groups: d.Groups, NodesPerGroup: d.NodesPerGroup,
		},
		Network:  net,
		Variant:  scenario.VariantSpec{Name: d.Variant.Name},
		Workload: w,
		Seed:     d.Seed,
	}
}

// RunRamp runs one keyed open-loop ramp against a sharded cluster built
// from opts: start all groups, wait for every leader, settle, drive the
// ramp, drain, aggregate. It mirrors cluster.RunThroughputRamp for the
// multi-group world and executes on the scenario engine.
func RunRamp(opts Options, ramp workload.Ramp, load LoadOptions) RampResult {
	return RunRampReps(opts, ramp, load, 1)[0]
}

// RunRampReps repeats the sharded ramp across reps derived seeds on the
// parallel trial runner (each repetition is a full independent multi-group
// simulation on its own engine) and returns the per-rep results in seed
// order — deterministic for any worker count.
func RunRampReps(opts Options, ramp workload.Ramp, load LoadOptions, reps int) []RampResult {
	spec := specFor(opts, ramp, load)
	spec.Reps = reps
	res, err := scenario.Run(spec, opts.ScenarioEnv(load))
	if err != nil {
		panic(err)
	}
	return res.ShardRamps
}

// MeanAggThroughput averages the headline aggregate-throughput metric over
// repetitions.
func MeanAggThroughput(results []RampResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.AggThroughput
	}
	return sum / float64(len(results))
}
