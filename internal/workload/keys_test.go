package workload

import (
	"math/rand"
	"testing"
)

func TestKeySamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewKeySampler(0, rng); err == nil {
		t.Fatal("expected error for empty keyspace")
	}
	if _, err := NewKeySampler(10, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := NewZipfKeySampler(10, 1.0, rng); err == nil {
		t.Fatal("expected error for zipf exponent <= 1")
	}
}

func TestKeySamplerDeterminism(t *testing.T) {
	a, err := NewKeySampler(1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewKeySampler(1000, rand.New(rand.NewSource(7)))
	for i := 0; i < 200; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d: %q != %q", i, ka, kb)
		}
	}
}

func TestKeySamplerUniformCoverage(t *testing.T) {
	const n = 16
	ks, err := NewKeySampler(n, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const draws = 16000
	for i := 0; i < draws; i++ {
		counts[ks.Next()]++
	}
	if len(counts) != n {
		t.Fatalf("covered %d of %d keys", len(counts), n)
	}
	// Uniform draws land within ±30% of the expected n-th share.
	want := draws / n
	for k, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("key %s drawn %d times, expected ≈%d", k, c, want)
		}
	}
}

func TestZipfKeySamplerSkew(t *testing.T) {
	ks, err := NewZipfKeySampler(1000, 1.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[ks.Next()]++
	}
	// The head key dominates: Zipf(1.5) puts well over a third of mass on
	// rank 0.
	if head := counts[ks.Key(0)]; head < draws/4 {
		t.Fatalf("head key drawn %d of %d times; distribution not skewed", head, draws)
	}
}
