package geo

import (
	"testing"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/sim"
)

func TestMatrixSymmetric(t *testing.T) {
	for _, a := range Regions {
		for _, b := range Regions {
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("asymmetric RTT %v↔%v", a, b)
			}
		}
	}
}

func TestDiagonalSmall(t *testing.T) {
	for _, r := range Regions {
		if RTT(r, r) > 5*time.Millisecond {
			t.Fatalf("intra-region RTT %v too large", RTT(r, r))
		}
	}
}

func TestKnownDistances(t *testing.T) {
	if RTT(Tokyo, London) < 150*time.Millisecond {
		t.Fatal("Tokyo–London implausibly fast")
	}
	if RTT(Sydney, SaoPaulo) < RTT(Tokyo, California) {
		t.Fatal("antipodal pair should be the slowest")
	}
}

func TestRegionStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Regions {
		s := r.String()
		if s == "" || seen[s] {
			t.Fatalf("bad region string %q", s)
		}
		seen[s] = true
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region string empty")
	}
}

func TestLinkParams(t *testing.T) {
	p := LinkParams(Tokyo, London, 0.05, 0.001)
	if p.RTT != RTT(Tokyo, London) {
		t.Fatal("RTT not propagated")
	}
	if p.Jitter <= 0 || p.Jitter > p.RTT/10 {
		t.Fatalf("jitter %v out of expected band", p.Jitter)
	}
	if p.Loss != 0.001 {
		t.Fatal("loss not propagated")
	}
}

func TestApplyToNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New[int](eng, 5, netsim.Constant(netsim.Params{RTT: time.Millisecond}), func(int, int) {})
	ApplyToNetwork(nw, Regions, 0.05, 0.001)
	got := nw.Params(0, 1) // Tokyo → London
	if got.RTT != RTT(Tokyo, London) {
		t.Fatalf("link RTT = %v, want %v", got.RTT, RTT(Tokyo, London))
	}
	got = nw.Params(3, 4) // Sydney → São Paulo
	if got.RTT != RTT(Sydney, SaoPaulo) {
		t.Fatalf("link RTT = %v", got.RTT)
	}
}

func TestMaxRTTFrom(t *testing.T) {
	if got := MaxRTTFrom(Tokyo, Regions); got != RTT(Tokyo, SaoPaulo) {
		t.Fatalf("MaxRTTFrom(Tokyo) = %v", got)
	}
}

func TestMedianQuorumRTT(t *testing.T) {
	// For a Tokyo leader with peers {London 210, California 105, Sydney
	// 105, SãoPaulo 255}: quorum needs 2 followers → 2nd smallest = 105.
	if got := MedianQuorumRTT(Tokyo, Regions); got != 105*time.Millisecond {
		t.Fatalf("MedianQuorumRTT(Tokyo) = %v, want 105ms", got)
	}
	// Quorum RTT is always ≤ max RTT.
	for _, r := range Regions {
		if MedianQuorumRTT(r, Regions) > MaxRTTFrom(r, Regions) {
			t.Fatalf("quorum RTT exceeds max for %v", r)
		}
	}
}
