package cluster

import (
	"time"

	"dynatune/internal/sim"
)

// RunPump drives a load generator's periodic work on the engine until the
// given virtual instant: flush fires every flushEach, compact once a
// second (keeping multi-minute ramps in memory). The single-group and
// shard load generators share this scheduling so their pacing cannot
// drift apart.
func RunPump(eng *sim.Engine, until, flushEach time.Duration, flush, compact func()) {
	var tick func()
	tick = func() {
		flush()
		if eng.Now() < until {
			eng.After(flushEach, tick)
		}
	}
	eng.After(flushEach, tick)
	var comp func()
	comp = func() {
		compact()
		if eng.Now() < until {
			eng.After(time.Second, comp)
		}
	}
	eng.After(time.Second, comp)
}

// ProposeParked is the propose-or-park tail both load generators share:
// parked arrivals (waiting out an earlier leaderless window) go ahead of
// the fresh batch to preserve arrival order; while the group has no
// leader the merged batch parks without paying for encoding; otherwise
// it is encoded (encode also advances the caller's seq) and proposed,
// with failed proposes counted per request into proposeErrors and
// accepted ones Recorded against the group's applied floor. It returns
// the new parked slice — nil once the batch was handed to the leader.
// Keeping this in one place stops the accounting invariants from
// drifting between the single-group and sharded generators.
func ProposeParked[T any](c *Cluster, f *Inflight, parked, fresh []T, at func(T) time.Duration, encode func(T) []byte, proposeErrors *uint64) []T {
	batch := append(parked, fresh...)
	if len(batch) == 0 {
		return nil
	}
	if c.Leader() == nil {
		return batch
	}
	datas := make([][]byte, len(batch))
	ats := make([]time.Duration, len(batch))
	for i, a := range batch {
		datas[i] = encode(a)
		ats[i] = at(a)
	}
	ok := c.LeaderProposeBatch(datas, func(first, term uint64, err error) {
		if err != nil {
			*proposeErrors += uint64(len(batch))
			return
		}
		f.Record(first, term, ats, c.MaxApplied())
	})
	if !ok {
		// Unreachable today — this runs in the same synchronous engine
		// callback as the leader check above — but kept so arrivals are
		// never silently dropped if that ever changes.
		return batch
	}
	return nil
}

// SplitDue partitions queued arrivals into those due at or before now and
// the rest, preserving order. rest reuses the queue's backing array; due
// gets a fresh one, so a later requeue never aliases rest's elements.
func SplitDue[T any](queue []T, now time.Duration, at func(T) time.Duration) (due, rest []T) {
	due = queue[:0:0]
	rest = queue[:0]
	for _, a := range queue {
		if at(a) <= now {
			due = append(due, a)
		} else {
			rest = append(rest, a)
		}
	}
	return due, rest
}
