package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"
	"testing"
	"time"

	"dynatune/internal/raft"
	"dynatune/internal/transport"
	"dynatune/internal/wireclient"
)

// startBinCluster boots n servers with both HTTP and binary listeners and
// returns the servers plus their binary addresses indexed by node ID-1.
func startBinCluster(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	addrs := make(map[raft.ID]transport.PeerAddr, n)
	for i := 0; i < n; i++ {
		addrs[raft.ID(i+1)] = transport.PeerAddr{TCP: reservePort(t, "tcp"), UDP: reservePort(t, "udp")}
	}
	srvs := make([]*Server, n)
	bins := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := Start(Config{
			ID:         raft.ID(i + 1),
			Listen:     addrs[raft.ID(i+1)],
			HTTPListen: "127.0.0.1:0",
			BinListen:  "127.0.0.1:0",
			Peers:      addrs,
			Tuner:      fastTuner(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		bins[i] = s.BinAddr()
		t.Cleanup(s.Stop)
	}
	return srvs, bins
}

func TestBinPutGetAgainstNodes(t *testing.T) {
	srvs, bins := startBinCluster(t, 3)
	waitLeader(t, srvs, 10*time.Second)

	gc := wireclient.NewGroupClient(bins, wireclient.PoolConfig{Size: 1})
	defer gc.Close()

	resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpPut, Key: "color", Value: []byte("blue")})
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if resp.Status != wireclient.StatusOK {
		t.Fatalf("put status %s: %s", resp.Status, resp.Err)
	}
	resp, err = gc.Call(&wireclient.Request{Op: wireclient.OpGet, Key: "color"})
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.Status != wireclient.StatusOK || !bytes.Equal(resp.Value, []byte("blue")) {
		t.Fatalf("get: status %s value %q", resp.Status, resp.Value)
	}
	resp, err = gc.Call(&wireclient.Request{Op: wireclient.OpGet, Key: "nope"})
	if err != nil {
		t.Fatalf("get missing: %v", err)
	}
	if resp.Status != wireclient.StatusNotFound {
		t.Fatalf("missing key status %s", resp.Status)
	}
}

// A put sent straight at a follower must answer StatusNotLeader carrying
// the real leader's id — the in-protocol twin of HTTP 421 + X-Raft-Leader.
func TestBinFollowerReturnsLeaderHint(t *testing.T) {
	srvs, bins := startBinCluster(t, 3)
	leader := waitLeader(t, srvs, 10*time.Second)

	var follower int = -1
	for i, s := range srvs {
		if s != leader {
			follower = i
			break
		}
	}
	c, err := wireclient.Dial(bins[follower], 2*time.Second, wireclient.ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Call(&wireclient.Request{Op: wireclient.OpPut, Key: "k", Value: []byte("v")})
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		if resp.Status == wireclient.StatusNotLeader {
			if resp.Leader != uint64(leader.Status().ID) {
				t.Fatalf("hint %d, leader is %d", resp.Leader, leader.Status().ID)
			}
			return
		}
		// The follower may not have learned the leader yet (hint 0 comes
		// back as an error upstream); retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("never got a leader hint; last status %s", resp.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestBinMultiGet(t *testing.T) {
	srvs, bins := startBinCluster(t, 3)
	waitLeader(t, srvs, 10*time.Second)

	gc := wireclient.NewGroupClient(bins, wireclient.PoolConfig{Size: 1})
	defer gc.Close()
	for i := 0; i < 4; i++ {
		resp, err := gc.Call(&wireclient.Request{
			Op: wireclient.OpPut, Key: fmt.Sprintf("mg-%d", i), Value: []byte(fmt.Sprintf("v%d", i)),
		})
		if err != nil || resp.Status != wireclient.StatusOK {
			t.Fatalf("put %d: %v %s", i, err, resp.Status)
		}
	}
	resp, err := gc.Call(&wireclient.Request{
		Op:   wireclient.OpMultiGet,
		Keys: []string{"mg-2", "missing", "mg-0", "mg-3"},
	})
	if err != nil {
		t.Fatalf("multiget: %v", err)
	}
	if resp.Status != wireclient.StatusOK {
		t.Fatalf("multiget status %s: %s", resp.Status, resp.Err)
	}
	wantFound := []bool{true, false, true, true}
	wantVals := []string{"v2", "", "v0", "v3"}
	for i := range wantFound {
		if resp.Found[i] != wantFound[i] || string(resp.Multi[i]) != wantVals[i] {
			t.Fatalf("slot %d: found=%v val=%q", i, resp.Found[i], resp.Multi[i])
		}
	}
}

// The group client must keep writes flowing across a leader crash by
// following hints / walking members to the new leader.
func TestBinClientFollowsLeaderChange(t *testing.T) {
	srvs, bins := startBinCluster(t, 3)
	leader := waitLeader(t, srvs, 10*time.Second)

	gc := wireclient.NewGroupClient(bins, wireclient.PoolConfig{
		Size: 1, BackoffBase: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
	})
	defer gc.Close()
	if resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpPut, Key: "pre", Value: []byte("1")}); err != nil || resp.Status != wireclient.StatusOK {
		t.Fatalf("pre-crash put: %v %s", err, resp.Status)
	}

	leader.Stop()
	rest := make([]*Server, 0, 2)
	for _, s := range srvs {
		if s != leader {
			rest = append(rest, s)
		}
	}
	waitLeader(t, rest, 10*time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpPut, Key: "post", Value: []byte("2")})
		if err == nil && resp.Status == wireclient.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("put never reached the new leader: %v / %+v", err, resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpGet, Key: "post"})
	if err != nil || resp.Status != wireclient.StatusOK || string(resp.Value) != "2" {
		t.Fatalf("read-after-failover: %v %+v", err, resp)
	}
}

// Graceful drain: requests the server has accepted are answered before the
// connection is torn down, even when close() races their handlers.
func TestBinServerDrainAnswersAccepted(t *testing.T) {
	release := make(chan struct{})
	bs, err := startBinServer("127.0.0.1:0", func(req wireclient.Request) wireclient.Response {
		<-release
		return wireclient.Response{Status: wireclient.StatusOK, Value: []byte("done")}
	}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}

	c, err := wireclient.Dial(bs.addr(), 2*time.Second, wireclient.ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const N = 10
	results := make(chan error, N)
	for i := 0; i < N; i++ {
		c.Do(&wireclient.Request{Op: wireclient.OpGet, Key: fmt.Sprintf("k%d", i)}, func(r wireclient.Response, err error) {
			if err == nil && r.Status != wireclient.StatusOK {
				err = fmt.Errorf("status %s", r.Status)
			}
			results <- err
		})
	}
	// Wait until the server has accepted all N into handlers.
	deadline := time.Now().Add(2 * time.Second)
	for c.Pending() < N && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the reader goroutine pick them up

	var closed sync.WaitGroup
	closed.Add(1)
	go func() { defer closed.Done(); bs.close() }()
	time.Sleep(20 * time.Millisecond) // close() is now draining
	close(release)                    // handlers complete during drain

	for i := 0; i < N; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("request %d failed during drain: %v", i, err)
			}
		case <-time.After(binDrainTimeout + 2*time.Second):
			t.Fatal("drain never answered accepted request")
		}
	}
	closed.Wait()
}

// BinFront routes keys across groups and reassembles cross-group multigets
// positionally.
func TestBinFrontShardedRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two raft clusters")
	}
	const G = 2
	groupBins := make([][]string, G)
	for g := 0; g < G; g++ {
		srvs, bins := startBinCluster(t, 3)
		waitLeader(t, srvs, 10*time.Second)
		groupBins[g] = bins
	}
	f, err := StartBinFront("127.0.0.1:0", groupBins, wireclient.PoolConfig{Size: 1}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cl := wireclient.NewClient([]string{f.Addr()}, wireclient.PoolConfig{Size: 1})
	defer cl.Close()

	// Find keys landing in each group so the multiget truly spans groups.
	byGroup := map[int]string{}
	keys := []string{}
	for i := 0; len(byGroup) < G || len(keys) < 6; i++ {
		k := fmt.Sprintf("shard-key-%d", i)
		g := int(f.Router().Route(k))
		if _, ok := byGroup[g]; !ok {
			byGroup[g] = k
		}
		keys = append(keys, k)
		if i > 1000 {
			t.Fatal("router never spread keys across groups")
		}
	}
	for i, k := range keys {
		if err := cl.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	for i, k := range keys {
		v, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("get %s: %q want %q", k, v, want)
		}
	}
	mgKeys := append([]string{}, keys...)
	mgKeys = append(mgKeys, "never-written")
	vals, found, err := cl.MultiGet(mgKeys)
	if err != nil {
		t.Fatalf("multiget: %v", err)
	}
	for i := range keys {
		if !found[i] || string(vals[i]) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("multiget slot %d: found=%v val=%q", i, found[i], vals[i])
		}
	}
	if found[len(keys)] {
		t.Fatal("missing key reported found")
	}
}
