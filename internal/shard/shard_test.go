package shard

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/netsim"
	"dynatune/internal/workload"
)

func fastProfile() netsim.Profile {
	return netsim.Constant(netsim.Params{RTT: 10 * time.Millisecond, Jitter: time.Millisecond})
}

func TestShardedClusterElectsAllGroups(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 11, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("not every group elected a leader")
	}
	// Leaders are independent per group: each group has exactly one.
	for g := 0; g < s.Groups(); g++ {
		if s.Leader(GroupID(g)) == nil {
			t.Fatalf("group %d lost its leader", g)
		}
	}
}

func TestShardedPutGetRoutesByKey(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 5, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%04d", i)
		if err := s.Put(keys[i], []byte(fmt.Sprintf("v%d", i)), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Every key reads back through the router.
	for i, k := range keys {
		v, ok := s.Get(k)
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q, %v", k, v, ok)
		}
	}
	// Writes landed only on the owning group: the key must exist in the
	// routed group's store and in no other group's.
	for _, k := range keys {
		owner := s.Router().Route(k)
		for g := 0; g < s.Groups(); g++ {
			lead := s.Leader(GroupID(g))
			if lead == nil {
				t.Fatalf("group %d lost its leader before verification", g)
			}
			_, ok := s.Group(GroupID(g)).Store(lead.ID()).Get(k)
			if ok != (GroupID(g) == owner) {
				t.Fatalf("key %q present=%v in group %d (owner %d)", k, ok, g, owner)
			}
		}
	}
	// The traffic actually fanned out: more than one group holds data.
	used := 0
	for g := 0; g < s.Groups(); g++ {
		lead := s.Leader(GroupID(g))
		if lead == nil {
			t.Fatalf("group %d lost its leader before verification", g)
		}
		if s.Group(GroupID(g)).Store(lead.ID()).Len() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d group(s) received writes; router not fanning out", used)
	}
}

func TestShardedMultiGet(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 9, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("mg-%03d", i)
		if err := s.Put(keys[i], []byte("x"), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	got := s.MultiGet(append(keys, "absent-key")...)
	if len(got) != len(keys) {
		t.Fatalf("MultiGet returned %d of %d keys", len(got), len(keys))
	}
	for _, k := range keys {
		if string(got[k]) != "x" {
			t.Fatalf("MultiGet[%q] = %q", k, got[k])
		}
	}
	if _, ok := got["absent-key"]; ok {
		t.Fatal("MultiGet invented a value for an absent key")
	}
}

func TestShardedGroupFailureIsIsolated(t *testing.T) {
	s := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 13, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	// Freeze group 0's leader: group 1 must keep serving throughout.
	s.Group(0).PauseLeader()
	var key1 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("iso-%04d", i)
		if s.Router().Route(k) == 1 {
			key1 = k
			break
		}
	}
	if err := s.Put(key1, []byte("alive"), 10*time.Second); err != nil {
		t.Fatalf("healthy group failed during sibling outage: %v", err)
	}
	// Group 0 recovers on its own (new election) within its timeout.
	deadline := s.Now() + 30*time.Second
	for s.Now() < deadline && s.Leader(0) == nil {
		s.Run(50 * time.Millisecond)
	}
	if s.Leader(0) == nil {
		t.Fatal("group 0 never re-elected")
	}
}

func TestShardedStoresConsistentPerGroup(t *testing.T) {
	s := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 17, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("c-%03d", i), []byte("v"), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2 * time.Second) // let followers catch up
	for g := 0; g < s.Groups(); g++ {
		if err := s.Group(GroupID(g)).StoresConsistent(); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
}

// inflatedCost scales the client-path and apply costs so one leader
// saturates around ~2k req/s, letting the scaling test drive deep
// saturation cheaply.
func inflatedCost() cluster.CostModel {
	c := cluster.DefaultCostModel()
	c.ProposeEntry = 400 * time.Microsecond
	c.ApplyEntry = 50 * time.Microsecond
	return c
}

func TestShardedThroughputScalesWithGroups(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 8000, StepRPS: 0, StepDuration: time.Second, Steps: 4}
	run := func(groups int) RampResult {
		return RunRamp(Options{
			Groups: groups, NodesPerGroup: 3, Seed: 23,
			Variant: cluster.VariantRaft(), Profile: fastProfile(),
			Cost: inflatedCost(),
		}, ramp, LoadOptions{Keys: 1024})
	}
	r1 := run(1)
	r4 := run(4)
	if r1.Completed == 0 || r4.Completed == 0 {
		t.Fatalf("no completions: 1-shard %d, 4-shard %d", r1.Completed, r4.Completed)
	}
	speedup := r4.AggThroughput / r1.AggThroughput
	t.Logf("1-shard %.0f req/s (p99 %.0f ms), 4-shard %.0f req/s (p99 %.0f ms), speedup %.2fx",
		r1.AggThroughput, r1.P99Ms, r4.AggThroughput, r4.P99Ms, speedup)
	if speedup < 2 {
		t.Fatalf("4-shard speedup %.2fx < 2x (1-shard %.0f req/s, 4-shard %.0f req/s)",
			speedup, r1.AggThroughput, r4.AggThroughput)
	}
	// Sharding must also relieve the saturated tail.
	if r4.P99Ms >= r1.P99Ms {
		t.Fatalf("4-shard p99 %.0f ms not below saturated 1-shard p99 %.0f ms", r4.P99Ms, r1.P99Ms)
	}
}

func TestLoadGenFansAcrossGroups(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 29, Profile: fastProfile()})
	ramp := workload.Ramp{StartRPS: 500, StepRPS: 0, StepDuration: time.Second, Steps: 2}
	lg := NewLoadGen(s, ramp, LoadOptions{Keys: 512})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	s.Run(2 * time.Second)
	lg.Start()
	s.Run(ramp.Duration() + 5*time.Second)
	if lg.TotalCompleted() == 0 {
		t.Fatal("no requests completed")
	}
	// All groups saw applied client traffic.
	for g := 0; g < s.Groups(); g++ {
		lead := s.Leader(GroupID(g))
		if lead == nil {
			t.Fatalf("group %d has no leader", g)
		}
		if s.Group(GroupID(g)).Store(lead.ID()).Applies() == 0 {
			t.Fatalf("group %d applied no client commands", g)
		}
	}
	if lg.Inflight() != 0 {
		t.Fatalf("%d requests still in flight after drain", lg.Inflight())
	}
}
