package cluster

import (
	"testing"

	"dynatune/internal/scenario"
)

// TestPhaseJitterWindowMatchesBaselineH pins the constant the scenario
// engine had to copy (the import points cluster → scenario, so it cannot
// reference BaselineH): the election trials' failure-phase randomization
// must span exactly one baseline heartbeat period, or the byte-identical
// golden summaries silently stop meaning "one heartbeat period".
func TestPhaseJitterWindowMatchesBaselineH(t *testing.T) {
	if scenario.PhaseJitterWindow != BaselineH {
		t.Fatalf("scenario.PhaseJitterWindow = %v, cluster.BaselineH = %v — the engine's copy drifted",
			scenario.PhaseJitterWindow, BaselineH)
	}
}
