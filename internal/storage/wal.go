package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dynatune/internal/raft"
)

// WAL is a file-backed raft.Persister: an append-only log of CRC-framed
// records in numbered segment files, plus snapshot files written
// atomically (tmp + rename). Recovery replays segments in order and
// tolerates a torn tail — a partially written final record is truncated
// away, everything before it is kept.
//
// Record framing: len(4) crc32c(4) payload, where payload[0] is the record
// type. Saving a snapshot rewrites the durable state into a fresh segment
// (hard state + snapshot pointer + log suffix) and deletes older segments,
// bounding disk usage the same way etcd's snapshot-then-purge does.
type WAL struct {
	dir  string
	opts WALOptions

	f      *os.File
	seq    uint64 // current segment number
	size   int64  // bytes written to the current segment
	rec    recovery
	closed bool
}

// WALOptions tune a WAL.
type WALOptions struct {
	// SegmentBytes rotates to a new segment file after this many bytes
	// (default 16 MiB).
	SegmentBytes int64
	// NoSync skips fsync after each record. Only for tests and
	// simulations; real deployments must keep it false or a crash can lose
	// acknowledged state.
	NoSync bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

const (
	recState    byte = 1
	recEntries  byte = 2
	recTruncate byte = 3
	recSnapMeta byte = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports unreadable durable state that is not a torn tail
// (mid-chain damage recovery cannot safely skip).
var ErrCorrupt = errors.New("storage: corrupt WAL")

// Open opens (creating if needed) the WAL in dir, replays it, and returns
// the WAL ready for appends plus the recovered state (nil on a fresh
// directory).
func Open(dir string, opts WALOptions) (*WAL, *raft.Restored, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	segs, err := w.segments()
	if err != nil {
		return nil, nil, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := w.replaySegment(seg, last); err != nil {
			return nil, nil, err
		}
	}
	if len(segs) > 0 {
		w.seq = segs[len(segs)-1]
		path := w.segPath(w.seq)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		w.f, w.size = f, st.Size()
	} else {
		if err := w.rotate(); err != nil {
			return nil, nil, err
		}
	}
	return w, w.rec.restored(), nil
}

func (w *WAL) segPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%08d.log", seq))
}

func (w *WAL) snapPath(index uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("snap-%016x.snap", index))
}

// segments lists existing segment numbers in ascending order.
func (w *WAL) segments() ([]uint64, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// replaySegment folds one segment into the recovery state. On the final
// segment a torn tail is truncated in place; anywhere else it is an error.
func (w *WAL) replaySegment(seq uint64, last bool) error {
	path := w.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec, n, ok := readRecord(data[off:])
		if !ok {
			if !last {
				return fmt.Errorf("%w: segment %d damaged at offset %d", ErrCorrupt, seq, off)
			}
			// Torn tail: drop the partial record and everything after it.
			if err := os.Truncate(path, int64(off)); err != nil {
				return err
			}
			break
		}
		if err := w.applyRecord(rec); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// readRecord parses one framed record, returning (payload, total frame
// length, ok). ok is false on a short or CRC-failing frame.
func readRecord(b []byte) ([]byte, int, bool) {
	if len(b) < 8 {
		return nil, 0, false
	}
	n := binary.BigEndian.Uint32(b)
	sum := binary.BigEndian.Uint32(b[4:])
	if n == 0 || uint64(len(b)) < 8+uint64(n) {
		return nil, 0, false
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, 8 + int(n), true
}

func (w *WAL) applyRecord(payload []byte) error {
	switch payload[0] {
	case recState:
		if len(payload) != 17 {
			return fmt.Errorf("%w: bad state record length %d", ErrCorrupt, len(payload))
		}
		w.rec.setHardState(raft.HardState{
			Term: binary.BigEndian.Uint64(payload[1:]),
			Vote: raft.ID(binary.BigEndian.Uint64(payload[9:])),
		})
	case recEntries:
		entries, err := decodeEntries(payload[1:])
		if err != nil {
			return err
		}
		return w.rec.appendEntries(entries)
	case recTruncate:
		if len(payload) != 9 {
			return fmt.Errorf("%w: bad truncate record length %d", ErrCorrupt, len(payload))
		}
		w.rec.truncateFrom(binary.BigEndian.Uint64(payload[1:]))
	case recSnapMeta:
		if len(payload) != 17 {
			return fmt.Errorf("%w: bad snapshot record length %d", ErrCorrupt, len(payload))
		}
		index := binary.BigEndian.Uint64(payload[1:])
		term := binary.BigEndian.Uint64(payload[9:])
		blob, err := os.ReadFile(w.snapPath(index))
		if err != nil {
			return fmt.Errorf("%w: snapshot %d referenced but unreadable: %v", ErrCorrupt, index, err)
		}
		snap, err := decodeSnapshotFile(index, term, blob)
		if err != nil {
			return err
		}
		w.rec.setSnapshot(snap)
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, payload[0])
	}
	return nil
}

// append frames, writes and (unless NoSync) fsyncs one record.
func (w *WAL) append(payload []byte) error {
	if w.closed {
		return errors.New("storage: WAL is closed")
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if w.size >= w.opts.SegmentBytes {
		return w.rotate()
	}
	return nil
}

func (w *WAL) rotate() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	w.seq++
	f, err := os.OpenFile(w.segPath(w.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	return nil
}

var _ raft.Persister = (*WAL)(nil)

// SaveHardState implements raft.Persister.
func (w *WAL) SaveHardState(hs raft.HardState) error {
	payload := make([]byte, 17)
	payload[0] = recState
	binary.BigEndian.PutUint64(payload[1:], hs.Term)
	binary.BigEndian.PutUint64(payload[9:], uint64(hs.Vote))
	if err := w.append(payload); err != nil {
		return err
	}
	w.rec.setHardState(hs)
	return nil
}

// AppendEntries implements raft.Persister.
func (w *WAL) AppendEntries(entries []raft.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	payload := encodeEntries(entries)
	if err := w.append(payload); err != nil {
		return err
	}
	return w.rec.appendEntries(cloneEntries(entries))
}

// TruncateFrom implements raft.Persister.
func (w *WAL) TruncateFrom(index uint64) error {
	payload := make([]byte, 9)
	payload[0] = recTruncate
	binary.BigEndian.PutUint64(payload[1:], index)
	if err := w.append(payload); err != nil {
		return err
	}
	w.rec.truncateFrom(index)
	return nil
}

// SaveSnapshot implements raft.Persister. The snapshot file is made
// durable before the WAL record that references it, so replay never sees a
// dangling pointer; afterwards the durable state is rewritten into a fresh
// segment and older segments and snapshots are purged.
func (w *WAL) SaveSnapshot(snap raft.Snapshot) error {
	if err := writeFileAtomic(w.snapPath(snap.Index), encodeSnapshotFile(snap)); err != nil {
		return err
	}
	payload := make([]byte, 17)
	payload[0] = recSnapMeta
	binary.BigEndian.PutUint64(payload[1:], snap.Index)
	binary.BigEndian.PutUint64(payload[9:], snap.Term)
	if err := w.append(payload); err != nil {
		return err
	}
	snap.Data = append([]byte(nil), snap.Data...)
	w.rec.setSnapshot(snap)
	return w.compact()
}

// compact rewrites the current durable state (hard state, snapshot
// pointer, log suffix) into a fresh segment and deletes everything older.
// A crash at any point leaves a replayable chain: replay's overwrite
// semantics make the rewritten records idempotent.
func (w *WAL) compact() error {
	oldSegs, err := w.segments()
	if err != nil {
		return err
	}
	if err := w.rotate(); err != nil {
		return err
	}
	if w.rec.haveState {
		if err := w.SaveHardState(w.rec.hs); err != nil {
			return err
		}
	}
	if w.rec.snap != nil {
		payload := make([]byte, 17)
		payload[0] = recSnapMeta
		binary.BigEndian.PutUint64(payload[1:], w.rec.snap.Index)
		binary.BigEndian.PutUint64(payload[9:], w.rec.snap.Term)
		if err := w.append(payload); err != nil {
			return err
		}
	}
	if len(w.rec.entries) > 0 {
		if err := w.append(encodeEntries(w.rec.entries)); err != nil {
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	for _, seq := range oldSegs {
		if seq < w.seq {
			if err := os.Remove(w.segPath(seq)); err != nil {
				return err
			}
		}
	}
	return w.purgeSnapshots()
}

// purgeSnapshots removes snapshot files older than the current one.
func (w *WAL) purgeSnapshots() error {
	if w.rec.snap == nil {
		return nil
	}
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		var index uint64
		if _, err := fmt.Sscanf(name, "snap-%016x.snap", &index); err != nil {
			continue
		}
		if index < w.rec.snap.Index {
			if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restored returns the current durable state (what a crash right now would
// recover), or nil if nothing was saved.
func (w *WAL) Restored() *raft.Restored { return w.rec.restored() }

// Sync forces buffered records to disk (meaningful under NoSync).
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the WAL.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeEntries(entries []raft.Entry) []byte {
	size := 1 + 4
	for _, e := range entries {
		size += 8 + 8 + 1 + 4 + len(e.Data)
	}
	payload := make([]byte, 0, size)
	payload = append(payload, recEntries)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(entries)))
	for _, e := range entries {
		payload = binary.BigEndian.AppendUint64(payload, e.Term)
		payload = binary.BigEndian.AppendUint64(payload, e.Index)
		payload = append(payload, byte(e.Type))
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(e.Data)))
		payload = append(payload, e.Data...)
	}
	return payload
}

func decodeEntries(b []byte) ([]raft.Entry, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short entries record", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	entries := make([]raft.Entry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		if len(b) < 21 {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		var e raft.Entry
		e.Term = binary.BigEndian.Uint64(b)
		e.Index = binary.BigEndian.Uint64(b[8:])
		e.Type = raft.EntryType(b[16])
		dlen := binary.BigEndian.Uint32(b[17:])
		b = b[21:]
		if uint32(len(b)) < dlen {
			return nil, fmt.Errorf("%w: truncated entry data %d", ErrCorrupt, i)
		}
		if dlen > 0 {
			e.Data = append([]byte(nil), b[:dlen]...)
		}
		b = b[dlen:]
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in entries record", ErrCorrupt, len(b))
	}
	return entries, nil
}

// encodeSnapshotFile lays out a snapshot file: membership (count-prefixed
// voter and learner ID lists) followed by the opaque state-machine data.
// Conf changes compacted below the snapshot floor survive only here.
func encodeSnapshotFile(snap raft.Snapshot) []byte {
	buf := make([]byte, 0, 8+8*(len(snap.Voters)+len(snap.Learners))+len(snap.Data))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snap.Voters)))
	for _, id := range snap.Voters {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snap.Learners)))
	for _, id := range snap.Learners {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	return append(buf, snap.Data...)
}

func decodeSnapshotFile(index, term uint64, blob []byte) (raft.Snapshot, error) {
	snap := raft.Snapshot{Index: index, Term: term}
	readIDs := func() ([]raft.ID, error) {
		if len(blob) < 4 {
			return nil, fmt.Errorf("%w: snapshot %d membership truncated", ErrCorrupt, index)
		}
		n := binary.BigEndian.Uint32(blob)
		blob = blob[4:]
		if uint64(len(blob)) < 8*uint64(n) {
			return nil, fmt.Errorf("%w: snapshot %d membership truncated", ErrCorrupt, index)
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]raft.ID, n)
		for i := range out {
			out[i] = raft.ID(binary.BigEndian.Uint64(blob))
			blob = blob[8:]
		}
		return out, nil
	}
	var err error
	if snap.Voters, err = readIDs(); err != nil {
		return snap, err
	}
	if snap.Learners, err = readIDs(); err != nil {
		return snap, err
	}
	if len(blob) > 0 {
		snap.Data = append([]byte(nil), blob...)
	}
	return snap, nil
}

// writeFileAtomic writes data to path via a temp file + rename so a crash
// never leaves a half-written file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
