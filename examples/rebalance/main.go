// Live shard-group rebalancing: a 3-group deployment serves a keyed
// open-loop ramp while a 4th Raft group boots mid-run. The consistent-hash
// ring moves ≈1/4 of the keyspace onto the new group with the
// drain → cutover → serve protocol — writes to moving keys are fenced
// until the copy stream converges, reads dual-read so nothing committed
// ever misses — and the run reports the moved-key fraction plus the
// latency tail split into pre/mid/post-move phases. The direct-API half
// then scales the same deployment back in.
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
	"dynatune/internal/shard"
)

func main() {
	// Scenario path: the registry's scale-out entry end to end.
	spec, ok := scenario.Lookup("scale-out-under-ramp")
	if !ok {
		panic("scale-out-under-ramp not registered")
	}
	spec.Workload.Steps = 2 // keep the example quick: 20s ramp, move at 12s
	res, err := bind.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Print(bind.Summarize(res))

	// Direct-API path: grow a live deployment by hand, then shrink it.
	fmt.Println("\ndirect API: scale 3→4→3 groups under synchronous writes")
	s := shard.New(shard.Options{
		Groups: 3, NodesPerGroup: 3, Seed: 7,
		Variant: cluster.VariantDynatune(dynatune.Options{}),
		Profile: netsim.Constant(netsim.Params{RTT: 20 * time.Millisecond, Jitter: time.Millisecond}),
	})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		panic("no leaders")
	}
	keys := make([]string, 120)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct-%04d", i)
		// A write superseded by a mid-run election is the one retryable
		// client error; retry like a real client would.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = s.Put(keys[i], []byte("balance"), 10*time.Second); err == nil {
				break
			}
			s.Run(time.Second)
		}
		if err != nil {
			panic(err)
		}
	}
	for _, op := range []func() error{
		func() error { return s.AddGroupLive(0) },
		func() error { return s.RemoveGroupLive(0) },
	} {
		if err := op(); err != nil {
			panic(err)
		}
		for s.Rebalancing() {
			s.Run(50 * time.Millisecond)
			// Reads never miss mid-move: dual-read covers the copy window.
			if _, ok := s.Get(keys[0]); !ok {
				panic("read missed during migration")
			}
		}
	}
	for _, mv := range s.Rebalances() {
		fmt.Printf("  %-12s group %d  epoch %d  moved %3d/%3d keys (%.0f%%)  drain %4.0f ms  rounds %d\n",
			mv.Kind, mv.Group, mv.Epoch, mv.MovedKeys, mv.TotalKeys, 100*mv.MovedFraction,
			mv.CutoverMs-mv.StartMs, mv.DrainRounds)
	}
	got := s.MultiGet(keys...)
	fmt.Printf("  all %d keys intact after scale-out+scale-in: %v\n", len(keys), len(got) == len(keys))
}
