package dynatune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dynatune/internal/raft"
)

// feed drives one leader→follower heartbeat exchange per sample through a
// follower-side tuner: seq increments, the "leader-measured" RTT rides in.
func feedRTTs(t *Tuner, rtts []time.Duration) {
	for i, r := range rtts {
		t.ObserveHeartbeat(1, raft.HeartbeatMeta{
			Seq:      uint64(i + 1),
			SendTime: int64(i + 1),
			RTT:      int64(r),
		}, 0)
	}
}

func repeatRTT(v time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestEstimatorWindowIsDefaultAndMatchesPaperRule(t *testing.T) {
	tn := MustNew(Options{})
	if tn.Options().Estimator != EstimatorWindow {
		t.Fatalf("default estimator = %v, want window", tn.Options().Estimator)
	}
	feedRTTs(tn, repeatRTT(100*time.Millisecond, 20))
	// Constant RTT: σ=0, Et = µ = 100 ms.
	if got := tn.ElectionTimeout(); got < 99*time.Millisecond || got > 101*time.Millisecond {
		t.Fatalf("window Et = %v, want ≈100ms", got)
	}
}

func TestEstimatorEWMAAdaptsFasterToStep(t *testing.T) {
	// After an RTT step 50→200 ms, the EWMA estimate must exceed the
	// equally-weighted window estimate given the same few post-step
	// samples (recent samples dominate the EWMA).
	mk := func(e Estimator) *Tuner {
		return MustNew(Options{Estimator: e, MaxListSize: 100})
	}
	samples := append(repeatRTT(50*time.Millisecond, 50), repeatRTT(200*time.Millisecond, 10)...)
	w, e := mk(EstimatorWindow), mk(EstimatorEWMA)
	feedRTTs(w, samples)
	feedRTTs(e, samples)
	// Window mean after 50×50+10×200 is 75 ms (+2σ ≈ 190ms); EWMA srtt
	// alone is already pulled well toward 200.
	if e.ElectionTimeout() <= w.ElectionTimeout() {
		t.Fatalf("EWMA Et %v should exceed window Et %v shortly after an upward step",
			e.ElectionTimeout(), w.ElectionTimeout())
	}
	if e.ElectionTimeout() < 150*time.Millisecond {
		t.Fatalf("EWMA Et %v too slow to track the 200ms step", e.ElectionTimeout())
	}
}

func TestEstimatorMaxRatchetsOnOutlier(t *testing.T) {
	samples := repeatRTT(100*time.Millisecond, 30)
	samples[15] = 400 * time.Millisecond // one spike
	w := MustNew(Options{Estimator: EstimatorWindow})
	m := MustNew(Options{Estimator: EstimatorMax})
	feedRTTs(w, samples)
	feedRTTs(m, samples)
	// Max-based Et must cover the spike; the window rule absorbs it into
	// µ+2σ and lands well below.
	if got := m.ElectionTimeout(); got < 400*time.Millisecond {
		t.Fatalf("max Et = %v, want ≥ the 400ms outlier", got)
	}
	if w.ElectionTimeout() >= m.ElectionTimeout() {
		t.Fatalf("window Et %v should sit below max Et %v after a single outlier",
			w.ElectionTimeout(), m.ElectionTimeout())
	}
}

func TestEstimatorsResetTogether(t *testing.T) {
	for _, e := range []Estimator{EstimatorWindow, EstimatorEWMA, EstimatorMax} {
		tn := MustNew(Options{Estimator: e})
		feedRTTs(tn, repeatRTT(80*time.Millisecond, 20))
		if !tn.Tuned() {
			t.Fatalf("%v: not tuned after 20 samples", e)
		}
		tn.Reset(raft.ResetTimeout)
		if tn.Tuned() {
			t.Fatalf("%v: still tuned after reset", e)
		}
		if got := tn.ElectionTimeout(); got != DefaultEt {
			t.Fatalf("%v: Et after reset = %v, want fallback", e, got)
		}
		// Re-warm works.
		feedRTTs(tn, repeatRTT(80*time.Millisecond, 20))
		if !tn.Tuned() {
			t.Fatalf("%v: never re-tuned", e)
		}
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewTuner(Options{Estimator: Estimator(99)}); err == nil {
		t.Fatal("bogus estimator accepted")
	}
}

// Property: for every estimator, on any positive RTT stream the tuned Et
// is at least MinEt and at least covers the EWMA/mean floor — i.e. no
// estimator can produce an Et below the smallest observed RTT's vicinity
// or a non-positive h.
func TestEstimatorPropertySane(t *testing.T) {
	check := func(raw []uint16, which uint8) bool {
		if len(raw) < 12 {
			return true
		}
		e := Estimator(which % 3)
		tn := MustNew(Options{Estimator: e})
		rtts := make([]time.Duration, len(raw))
		var minRTT time.Duration = math.MaxInt64
		for i, r := range raw {
			rtts[i] = time.Duration(r%500+1) * time.Millisecond
			if rtts[i] < minRTT {
				minRTT = rtts[i]
			}
		}
		feedRTTs(tn, rtts)
		if !tn.Tuned() {
			return false
		}
		et, h := tn.ElectionTimeout(), tn.TunedH()
		if et < DefaultMinEt || h <= 0 || h > et {
			t.Logf("estimator %v: et=%v h=%v", e, et, h)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
