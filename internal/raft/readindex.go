package raft

import (
	"errors"
	"time"
)

// Linearizable reads. Raft offers two leader-side read paths that avoid
// writing a log entry per read (Raft §8, as implemented by etcd):
//
//   - ReadIndex: the leader records its commit index, confirms its
//     leadership with one heartbeat round to the voters, and serves the
//     read once the state machine has applied up to that index. Costs one
//     RTT to the nearest quorum.
//   - Lease read: the leader serves immediately while it holds a
//     check-quorum lease (a quorum answered within the last election
//     timeout). Costs nothing but leans on bounded clock drift — and on
//     the election timeout itself, which under Dynatune is *tuned*: a
//     smaller Et shrinks the lease window, so lease reads fall back to
//     ReadIndex more often right after quiet periods. The read-latency
//     experiment quantifies this interaction.
//
// Both paths deliver through a callback (index, ok): ok=false means
// leadership was lost before the read could be confirmed and the client
// must retry elsewhere.

// ErrNotReady is returned while the leader has not yet committed an entry
// in its own term; serving reads before that could miss entries committed
// by a predecessor (Raft §8's no-op guard).
var ErrNotReady = errors.New("raft: leader has not committed in its term yet")

// ErrLeaseExpired is returned by LeaseRead when the check-quorum lease has
// lapsed; callers fall back to ReadIndex.
var ErrLeaseExpired = errors.New("raft: leader lease expired")

// readRequest is one in-flight ReadIndex round.
type readRequest struct {
	ctx   uint64
	index uint64 // commit index captured at registration
	acks  map[ID]bool
	cb    func(index uint64, ok bool)
}

// readWaiter delays a confirmed read until the apply index catches up.
type readWaiter struct {
	index uint64
	cb    func(index uint64, ok bool)
}

// ReadIndex registers a linearizable read. The callback fires with the
// read index once (a) a quorum confirmed this node was still leader after
// registration and (b) the state machine applied up to that index — or
// with ok=false if leadership was lost first.
func (n *Node) ReadIndex(cb func(index uint64, ok bool)) error {
	if n.state != StateLeader {
		return ErrNotLeader
	}
	if t, ok := n.log.Term(n.log.Committed()); !ok || t != n.term {
		return ErrNotReady
	}
	index := n.log.Committed()
	if n.quorum == 1 {
		// Sole voter: leadership is self-evident.
		n.queueReadWaiter(readWaiter{index: index, cb: cb})
		return nil
	}
	n.readCtx++
	req := &readRequest{ctx: n.readCtx, index: index, acks: map[ID]bool{}, cb: cb}
	if n.isVoter() {
		req.acks[n.id] = true
	}
	n.pendingReads = append(n.pendingReads, req)
	// Confirm with an immediate beat to every voter. The beat carries the
	// newest context; a response to it also acknowledges all older ones.
	for _, p := range n.peers {
		if n.voters[p] {
			n.sendHeartbeatCtx(p, n.readCtx)
		}
	}
	return nil
}

// LeaseRead serves a linearizable read from the check-quorum lease: if a
// quorum of voters answered within the last election timeout, the leader
// cannot have been supplanted (a new leader needs a quorum that stopped
// talking to us first, modulo clock drift). Returns ErrLeaseExpired when
// the lease lapsed; the caller should fall back to ReadIndex.
func (n *Node) LeaseRead(cb func(index uint64, ok bool)) error {
	if n.state != StateLeader {
		return ErrNotLeader
	}
	if t, ok := n.log.Term(n.log.Committed()); !ok || t != n.term {
		return ErrNotReady
	}
	if !n.leaseValid() {
		return ErrLeaseExpired
	}
	n.queueReadWaiter(readWaiter{index: n.log.Committed(), cb: cb})
	return nil
}

// leaseValid reports whether a quorum of voters (including self) has been
// heard from within one election timeout.
func (n *Node) leaseValid() bool {
	if n.cfg.DisableCheckQuorum {
		return false // no lease without check-quorum's stepping-down rule
	}
	now := n.cfg.Runtime.Now()
	et := n.cfg.Tuner.ElectionTimeout()
	active := 0
	if n.isVoter() {
		active = 1
	}
	for id, pr := range n.prs {
		if n.voters[id] && pr.lastActive > 0 && now-pr.lastActive < et {
			active++
		}
	}
	return active >= n.quorum
}

// LeaseRemaining reports how much of the check-quorum lease is left
// (instrumentation; zero when no lease is held).
func (n *Node) LeaseRemaining() time.Duration {
	if n.state != StateLeader || !n.leaseValid() {
		return 0
	}
	// The lease is bounded by the quorum-th most recent contact.
	var times []time.Duration
	now := n.cfg.Runtime.Now()
	if n.isVoter() {
		times = append(times, now)
	}
	for id, pr := range n.prs {
		if n.voters[id] && pr.lastActive > 0 {
			times = append(times, pr.lastActive)
		}
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] > times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	if len(times) < n.quorum {
		return 0
	}
	deadline := times[n.quorum-1] + n.cfg.Tuner.ElectionTimeout()
	if deadline <= now {
		return 0
	}
	return deadline - now
}

// sendHeartbeatCtx sends one heartbeat carrying a read context.
func (n *Node) sendHeartbeatCtx(peer ID, ctx uint64) {
	now := n.cfg.Runtime.Now()
	meta := n.cfg.Tuner.PrepareHeartbeat(peer, now)
	commit := n.log.Committed()
	if pr := n.prs[peer]; pr != nil && pr.match < commit {
		commit = pr.match
	}
	n.send(Message{Type: MsgHeartbeat, To: peer, Term: n.term, Commit: commit, HB: meta, ReadCtx: ctx})
}

// onReadAck processes a heartbeat response's read context on the leader:
// an ack of context c confirms every pending read registered at or before
// c (the responder saw us as leader no earlier than c's registration).
func (n *Node) onReadAck(from ID, ctx uint64) {
	if ctx == 0 || len(n.pendingReads) == 0 || !n.voters[from] {
		return
	}
	confirmed := 0
	for _, req := range n.pendingReads {
		if req.ctx > ctx {
			break
		}
		req.acks[from] = true
		if len(req.acks) >= n.quorum {
			confirmed++
		} else {
			break // older unconfirmed blocks newer (they confirm in order)
		}
	}
	for _, req := range n.pendingReads[:confirmed] {
		n.queueReadWaiter(readWaiter{index: req.index, cb: req.cb})
	}
	n.pendingReads = n.pendingReads[confirmed:]
}

// queueReadWaiter fires the callback immediately when the apply index
// already covers it, else parks it until commitTo applies far enough.
func (n *Node) queueReadWaiter(w readWaiter) {
	if n.log.Applied() >= w.index {
		w.cb(w.index, true)
		return
	}
	n.readWaiters = append(n.readWaiters, w)
}

// notifyReadWaiters fires parked reads covered by the apply index.
func (n *Node) notifyReadWaiters() {
	if len(n.readWaiters) == 0 {
		return
	}
	applied := n.log.Applied()
	kept := n.readWaiters[:0]
	for _, w := range n.readWaiters {
		if applied >= w.index {
			w.cb(w.index, true)
		} else {
			kept = append(kept, w)
		}
	}
	n.readWaiters = kept
}

// failPendingReads aborts all in-flight reads (leadership lost); clients
// retry against the new leader.
func (n *Node) failPendingReads() {
	for _, req := range n.pendingReads {
		req.cb(0, false)
	}
	n.pendingReads = nil
	for _, w := range n.readWaiters {
		w.cb(0, false)
	}
	n.readWaiters = nil
}

// PendingReads reports in-flight ReadIndex rounds (instrumentation).
func (n *Node) PendingReads() int { return len(n.pendingReads) }
