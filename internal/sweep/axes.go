package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// The known axes. Each definition parses one operator-supplied value and
// applies it to a cell's spec; anything a value makes unrunnable is
// caught by the spec validation that follows in Cells.

type def struct {
	doc   string
	apply func(spec *scenario.Spec, value string) error
}

var defs = map[string]def{
	"n": {
		doc: "cluster size (per-group size for sharded topologies)",
		apply: func(spec *scenario.Spec, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("axis n: %q is not a positive integer", v)
			}
			spec.Topology.N = n
			if spec.Topology.Groups > 0 {
				spec.Topology.NodesPerGroup = n
			}
			return nil
		},
	},
	"loss": {
		doc: "packet-loss rate on every link segment (geo topologies: the matrix loss)",
		apply: func(spec *scenario.Spec, v string) error {
			loss, err := strconv.ParseFloat(v, 64)
			if err != nil || loss < 0 || loss >= 1 {
				return fmt.Errorf("axis loss: %q is not a rate in [0, 1)", v)
			}
			if len(spec.Topology.Regions) > 0 {
				spec.Topology.GeoLoss = loss
				return nil
			}
			if len(spec.Network.Segments) == 0 {
				// bind would fall back to its default profile: the cell
				// would be labelled with a loss that was never applied.
				return fmt.Errorf("axis loss: the base spec has no network segments to apply it to")
			}
			spec.Network = spec.Network.WithLoss(loss)
			return nil
		},
	},
	"rtt": {
		doc: "RTT on every link segment, e.g. 50ms (not valid for geo topologies)",
		apply: func(spec *scenario.Spec, v string) error {
			rtt, err := time.ParseDuration(v)
			if err != nil || rtt <= 0 {
				return fmt.Errorf("axis rtt: %q is not a positive duration", v)
			}
			if len(spec.Topology.Regions) > 0 {
				return fmt.Errorf("axis rtt: geo topologies take their RTTs from the region matrix")
			}
			if len(spec.Network.Segments) == 0 {
				return fmt.Errorf("axis rtt: the base spec has no network segments to apply it to")
			}
			spec.Network = spec.Network.WithRTT(scenario.Duration(rtt))
			return nil
		},
	},
	"variant": {
		doc: "system under test: raft | raft-low | dynatune | dynatune-ext | fix-k",
		apply: func(spec *scenario.Spec, v string) error {
			// bind owns the name registry; asking it keeps one source of
			// truth (and accepts the display spellings spec files may use).
			probe := spec.Variant
			probe.Name = v
			if _, err := bind.Variant(probe); err != nil {
				return fmt.Errorf("axis variant: %w", err)
			}
			spec.Variant.Name = v
			return nil
		},
	},
	"shards": {
		doc: "Raft group count (throughput scenarios; all values must be positive)",
		apply: func(spec *scenario.Spec, v string) error {
			g, err := strconv.Atoi(v)
			if err != nil || g < 1 {
				return fmt.Errorf("axis shards: %q is not a positive integer", v)
			}
			spec.Topology.Groups = g
			if spec.Topology.NodesPerGroup == 0 {
				spec.Topology.NodesPerGroup = spec.Topology.N
			}
			return nil
		},
	},
	"scale": {
		doc: "scenario.Scale fraction shrinking trials/horizon per cell, in (0, 1]",
		apply: func(spec *scenario.Spec, v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("axis scale: %q is not a fraction in (0, 1]", v)
			}
			*spec = scenario.Scale(*spec, f)
			return nil
		},
	},
}

func axisDef(name string) (def, error) {
	d, ok := defs[name]
	if !ok {
		return def{}, fmt.Errorf("sweep: unknown axis %q (known: %s)", name, strings.Join(AxisNames(), ", "))
	}
	return d, nil
}

// AxisNames lists the known axes in sorted order.
func AxisNames() []string {
	out := make([]string, 0, len(defs))
	for n := range defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AxisDoc returns one axis's help line.
func AxisDoc(name string) string { return defs[name].doc }
