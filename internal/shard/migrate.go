package shard

import (
	"bytes"
	"fmt"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
)

// This file implements the live group-lifecycle migration: AddGroupLive
// boots a new Raft group on the shared engine and streams its keyspace
// share into it; RemoveGroupLive streams the retiring group's keys out to
// the survivors. Both follow the same drain → cutover → serve protocol:
//
//   - The routing ring flips (a new epoch) the moment the move starts.
//     Writes to keys whose owner changes are FENCED — parked by the load
//     generator, waited out by Put — until the drain completes, so a
//     moved key can never receive a client write that the copy stream
//     would overwrite (zero lost or double-applied writes, witnessed by
//     the kv idempotence table exactly as in Put).
//   - Reads dual-read until cutover: a miss at the key's current owner
//     falls back to its previous-epoch owner, so no read misses a key
//     that committed before the move. (After cutover the destination is
//     authoritative — see dualReadActive.)
//   - The bulk phase (snapshot-ship, the default) exports the moved span
//     from each authoritative source leader's store as byte-capped
//     chunks (kv.SpanExport) and replicates each chunk as a single
//     OpInstallSpan command at its destination: O(chunks) consensus
//     rounds for the resident span instead of O(keys).
//     Options.MigrateKeyStream skips it, restoring the per-key protocol
//     for A/B comparison (dynabench's migration bench runs both).
//   - The drain itself is a convergence loop covering the delta the bulk
//     export missed (pre-flip writes that were still queued at a source
//     leader when the span was exported): scan the source leader stores
//     in sorted-key order (kv.SortedKeys — map order must never leak
//     into the log), batch-propose the keys whose destination copy is
//     missing or stale, wait for the batch to apply, re-scan. A scan
//     that finds nothing left to copy is the cutover: the fence lifts and
//     parked writes flush to the new owners.
//   - Serve/cleanup: stray copies at the old owners are deleted (add), or
//     the retired group's nodes are paused for decommission (remove).
//
// Determinism: the migration draws no randomness of its own — the booted
// group's timers come from the shared engine (seeded at construction) and
// the stream order is the sorted key order — so a migration is a pure
// function of the engine seed and the epoch at which it fires, and
// results stay byte-identical for any DYNATUNE_TRIAL_WORKERS.

// migrClientID marks migration traffic (copy streams and cleanup deletes)
// in the kv idempotence table, distinct from the load generator's client 1
// and direct-Put client 2.
const migrClientID = 3

// Migration phases.
const (
	phasePrepare = iota // new group booting, waiting for its first leader
	phaseBulk           // snapshot-shipping the moved span as OpInstallSpan chunks
	phaseDrain          // streaming the remaining delta to its new owners
	phaseCleanup        // fence lifted; removing stale copies at the sources
)

const (
	// migrTick is the state machine's poll cadence.
	migrTick = 5 * time.Millisecond
	// migrBatch caps one streamed propose (one Ready-loop flush of copies).
	migrBatch = 256
	// migrWait bounds waiting for one streamed batch to apply before the
	// next convergence scan re-copies whatever is still missing (covers a
	// destination leader dying with the batch unacknowledged).
	migrWait = 2 * time.Second
	// migrSpanBytes caps one OpInstallSpan chunk's encoded payload in the
	// bulk phase. Each chunk is one replicated command, so this is the
	// bulk phase's consensus-round granularity.
	migrSpanBytes = 64 << 10
	// DefaultCutoverDeadline bounds the move's cutover (prepare + drain)
	// when the caller passes no deadline: a move that cannot flip serving
	// to the new topology in time aborts and rolls the ring back.
	DefaultCutoverDeadline = 30 * time.Second
)

type copyCmd struct {
	dst GroupID
	cmd kv.Command
}

type migration struct {
	s        *Cluster
	kind     string // "add-group" | "remove-group"
	target   GroupID
	deadline time.Duration // absolute virtual-time cutover deadline
	phase    int

	queue []copyCmd // commands of the current streaming round
	// waits maps destination → the last migration seq proposed to it and
	// not yet confirmed applied; waitBy bounds the confirmation wait.
	waits  map[GroupID]uint64
	waitBy time.Duration

	// barriers maps each source group to a no-op barrier seq proposed at
	// flip time through the same LeaderProposeBatch path client traffic
	// uses. A pre-flip client write may still sit in the source leader's
	// CPU queue when the ring flips; the barrier queues behind it (FIFO),
	// so once the barrier has applied, every pre-flip write has applied
	// too and the convergence scans have seen it. Cutover is gated on all
	// barriers clearing — without this, cleanup could delete a late
	// pre-flip commit the stream never copied.
	barriers  map[GroupID]uint64
	barrierBy time.Duration // re-propose outstanding barriers after this

	moved    map[string]bool // distinct keys streamed so far
	rounds   int             // convergence scans run
	scanned  bool            // first scan done (TotalKeys fixed)
	bulkDone bool            // bulk span export queued (it runs once)
	// proposeErrs counts migration proposes that failed — a leaderless
	// destination or an error surfaced by the propose callback. Copied to
	// stats at finish/abort; callbacks landing after that mutate only the
	// detached migration.
	proposeErrs int
	stats       scenario.RebalanceStats
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// AddGroupLive boots one more Raft group on the shared engine and starts
// the drain → cutover → serve migration moving its consistent-hash share
// (≈1/(G+1) of the keyspace) into it, while the deployment keeps serving.
// The routing epoch flips immediately; writes to moved keys are fenced
// until the drain converges. deadline bounds the cutover (prepare +
// drain): a move that cannot flip serving in time — no leader in the new
// group, a drain that will not converge — aborts and rolls the ring
// back; <= 0 takes DefaultCutoverDeadline. Only one migration may run at
// a time.
func (s *Cluster) AddGroupLive(deadline time.Duration) error {
	if s.migr != nil {
		s.recordSkipped("add-group", s.router.Groups())
		return fmt.Errorf("shard: a %s migration is already in progress", s.migr.kind)
	}
	g := s.router.AddGroup()
	// The new group attaches to the consolidation fabric under a fresh
	// UID: envelopes still in flight toward a previously retired tenant of
	// this slot keep addressing the old (paused) group, never the new one.
	c := s.newGroup()
	if int(g) < len(s.groups) {
		s.groups[g] = c // reuse a slot a previous RemoveGroupLive retired
		s.retired[g] = false
	} else {
		s.groups = append(s.groups, c)
		s.retired = append(s.retired, false)
	}
	for _, fn := range s.onGroupAdded {
		fn(g) // observers wire SetOnApply before the group starts
	}
	c.Start()
	now := s.eng.Now()
	if deadline <= 0 {
		deadline = DefaultCutoverDeadline
	}
	s.migr = &migration{
		s: s, kind: "add-group", target: g, deadline: now + deadline,
		phase:    phasePrepare,
		waits:    map[GroupID]uint64{},
		barriers: map[GroupID]uint64{},
		moved:    map[string]bool{},
		stats: scenario.RebalanceStats{
			Kind: "add-group", Group: int(g), Epoch: s.router.Epoch(),
			StartMs: ms(now),
		},
	}
	s.migr.proposeBarriers(now)
	s.eng.After(migrTick, s.tickMigration)
	return nil
}

// RemoveGroupLive retires the highest-numbered Raft group: the routing
// epoch flips immediately (its keys are fenced and re-owned by the
// survivors), the retiring group's store is drained into the new owners,
// and once the drain converges its nodes are paused for decommission.
// deadline bounds the cutover as in AddGroupLive (an abort restores the
// ring and the group keeps serving); <= 0 takes DefaultCutoverDeadline.
func (s *Cluster) RemoveGroupLive(deadline time.Duration) error {
	if s.migr != nil {
		s.recordSkipped("remove-group", s.router.Groups()-1)
		return fmt.Errorf("shard: a %s migration is already in progress", s.migr.kind)
	}
	if s.router.Groups() <= 1 {
		return fmt.Errorf("shard: cannot remove the last group")
	}
	g := GroupID(s.router.Groups() - 1)
	s.router.RemoveGroup(g)
	now := s.eng.Now()
	if deadline <= 0 {
		deadline = DefaultCutoverDeadline
	}
	s.migr = &migration{
		s: s, kind: "remove-group", target: g, deadline: now + deadline,
		phase:    s.drainStartPhase(), // nothing to boot: ship (or drain) right away
		waits:    map[GroupID]uint64{},
		barriers: map[GroupID]uint64{},
		moved:    map[string]bool{},
		stats: scenario.RebalanceStats{
			Kind: "remove-group", Group: int(g), Epoch: s.router.Epoch(),
			StartMs: ms(now),
		},
	}
	s.migr.proposeBarriers(now)
	s.eng.After(migrTick, s.tickMigration)
	return nil
}

// drainStartPhase is the phase a migration enters once its topology is
// ready (the booted group has a leader, or there was nothing to boot):
// the snapshot-ship bulk phase by default, or straight to the per-key
// drain under Options.MigrateKeyStream.
func (s *Cluster) drainStartPhase() int {
	if s.opts.MigrateKeyStream {
		return phaseDrain
	}
	return phaseBulk
}

// sourceGroups lists the groups whose stores the migration drains: for an
// add, every serving group except the new one; for a remove, the retiring
// group itself.
func (m *migration) sourceGroups() []GroupID {
	if m.kind == "remove-group" {
		return []GroupID{m.target}
	}
	out := make([]GroupID, 0, m.s.router.Groups()-1)
	for g := 0; g < m.s.router.Groups(); g++ {
		if GroupID(g) != m.target {
			out = append(out, GroupID(g))
		}
	}
	return out
}

// proposeBarrier (re)proposes one flip-time barrier no-op to group g and
// records the seq barriersClear must observe applied. An unproposable
// barrier (no leader right now) still records its seq: LastSeq can never
// reach it, so the retry path re-proposes.
func (m *migration) proposeBarrier(g GroupID) {
	m.s.migrSeq++
	seq := m.s.migrSeq
	data := kv.Encode(kv.Command{Op: kv.OpNoop, Client: migrClientID, Seq: seq})
	m.stats.ProposeOps++
	if !m.s.groups[g].LeaderProposeBatch([][]byte{data}, func(_, _ uint64, err error) {
		if err != nil {
			m.proposeErrs++
		}
	}) {
		m.proposeErrs++
	}
	m.barriers[g] = seq
}

// proposeBarriers proposes the flip-time barrier to every source group. A
// barrier lost to a leader change is retried by barriersClear until it
// lands.
func (m *migration) proposeBarriers(now time.Duration) {
	for _, g := range m.sourceGroups() {
		m.proposeBarrier(g)
	}
	m.barrierBy = now + migrWait
}

// barriersClear reports whether every source group has applied its
// flip-time barrier, re-proposing outstanding ones on timeout.
func (m *migration) barriersClear(now time.Duration) bool {
	for g := 0; g < len(m.s.groups); g++ {
		seq, ok := m.barriers[GroupID(g)]
		if !ok {
			continue
		}
		if st, ok2 := m.s.leaderStore(GroupID(g)); ok2 && st.LastSeq(migrClientID) >= seq {
			delete(m.barriers, GroupID(g))
		}
	}
	if len(m.barriers) == 0 {
		return true
	}
	if now >= m.barrierBy {
		for g := 0; g < len(m.s.groups); g++ {
			if _, ok := m.barriers[GroupID(g)]; ok {
				m.proposeBarrier(GroupID(g))
			}
		}
		m.barrierBy = now + migrWait
	}
	return false
}

// recordSkipped logs a move that could not start because another
// migration was still draining — silently dropping it would leave the
// report claiming a topology the run never reached.
func (s *Cluster) recordSkipped(kind string, wouldBe int) {
	s.rebalances = append(s.rebalances, scenario.RebalanceStats{
		Kind: kind, Group: wouldBe, Epoch: s.router.Epoch(),
		StartMs: ms(s.eng.Now()), DoneMs: ms(s.eng.Now()),
		Skipped: true,
	})
}

// Rebalancing reports whether a group migration is in flight.
func (s *Cluster) Rebalancing() bool { return s.migr != nil }

// Rebalances returns the completed (or aborted) moves, in order.
func (s *Cluster) Rebalances() []scenario.RebalanceStats {
	return append([]scenario.RebalanceStats(nil), s.rebalances...)
}

// dualReadActive reports whether reads should fall back to the previous
// epoch's owner on a miss. Only before cutover: the fence guarantees no
// moved key has been rewritten, so the source copy is always current.
// After cutover the destination is authoritative and a fallback could
// serve a stale source copy awaiting cleanup — a miss there (e.g. the
// destination is momentarily leaderless) must stay a miss.
func (s *Cluster) dualReadActive() bool {
	m := s.migr
	return m != nil && m.phase <= phaseDrain
}

// Fenced reports whether writes to key are currently held back by a
// migration: the key's owner is changing and the copy stream has not
// converged yet. Writers park (LoadGen) or wait (Put) until the fence
// lifts at cutover.
func (s *Cluster) Fenced(key string) bool {
	m := s.migr
	if m == nil || m.phase > phaseDrain {
		return false
	}
	if m.kind == "add-group" {
		return s.router.Route(key) == m.target
	}
	pg, ok := s.router.RoutePrev(key)
	return ok && pg == m.target
}

// tickMigration advances the migration state machine one step and
// reschedules itself while a migration is live.
func (s *Cluster) tickMigration() {
	m := s.migr
	if m == nil {
		return
	}
	now := s.eng.Now()
	switch m.phase {
	case phasePrepare:
		if now >= m.deadline {
			m.abort(now)
		} else if s.groups[m.target].Leader() != nil {
			m.phase = s.drainStartPhase()
		}
	case phaseBulk:
		// The bulk phase sits inside the cutover window like the drain: a
		// span ship that cannot finish in time aborts the move.
		if now >= m.deadline {
			m.abort(now)
		} else {
			m.bulkTick(now)
		}
	case phaseDrain:
		// The deadline bounds the cutover (prepare + drain); a drain that
		// cannot converge in time — a source stuck leaderless, a
		// destination that keeps losing its batches — aborts rather than
		// fencing writers forever. Cleanup (post-cutover) is unbounded:
		// the flip already happened and the scans converge on their own.
		if now >= m.deadline {
			m.abort(now)
		} else {
			m.drainTick(now)
		}
	case phaseCleanup:
		m.cleanupTick(now)
	}
	if s.migr != nil {
		s.eng.After(migrTick, s.tickMigration)
	}
}

// abort rolls back a move that missed its cutover deadline: the ring
// reverts (another epoch bump, identical to the pre-move ring — the ring
// is a pure function of the group count), the fence lifts, and the move
// is recorded as aborted. Nothing was deleted at the sources (deletes are
// cleanup, which only runs after cutover), so the original owners still
// hold every key; copies already streamed are retired with the new group
// (add) or sit unrouted at the survivors until a later move overwrites
// them (remove).
func (m *migration) abort(now time.Duration) {
	s := m.s
	if m.kind == "add-group" {
		s.router.RemoveGroup(m.target)
		s.pauseGroup(m.target)
	} else {
		// Restore the retiring group's ring points; its cluster never
		// stopped serving (decommission happens at finish, not here).
		s.router.AddGroup()
	}
	m.stats.Aborted = true
	// Record what the partial drain did stream: those copies survive as
	// unrouted strays (see above) until a later move's cleanup.
	m.stats.MovedKeys = len(m.moved)
	m.stats.DrainRounds = m.rounds
	m.stats.ProposeErrors = m.proposeErrs
	m.stats.DoneMs = ms(now)
	s.rebalances = append(s.rebalances, m.stats)
	s.migr = nil
}

// confirmWaits checks outstanding streamed batches against the
// destinations' idempotence tables. It returns true when the caller
// should keep waiting.
func (m *migration) confirmWaits(now time.Duration) bool {
	if len(m.waits) == 0 {
		return false
	}
	if now >= m.waitBy {
		// Waited long enough (a destination leader probably died with the
		// batch): drop the waits — the next convergence scan re-copies
		// whatever is actually missing.
		m.waits = map[GroupID]uint64{}
		return false
	}
	for g := 0; g < len(m.s.groups); g++ {
		seq, ok := m.waits[GroupID(g)]
		if !ok {
			continue
		}
		if lead := m.s.groups[g].Leader(); lead != nil &&
			m.s.groups[g].Store(lead.ID()).LastSeq(migrClientID) >= seq {
			delete(m.waits, GroupID(g))
		}
	}
	return len(m.waits) > 0
}

// bulkTick drives the snapshot-ship phase: one span export per
// (source, destination) pair, streamed as OpInstallSpan chunks through
// the same batched propose + confirm path key copies use. When the last
// chunk confirms, the drain covers only the delta. A chunk batch lost to
// a destination leader change is not re-shipped: the wait times out and
// the drain's per-key convergence scan re-copies whatever is actually
// missing — correctness never depends on the bulk phase completing.
func (m *migration) bulkTick(now time.Duration) {
	if m.confirmWaits(now) {
		return
	}
	if len(m.queue) > 0 {
		m.stream(now)
		return
	}
	if m.bulkDone {
		m.phase = phaseDrain
		return
	}
	if !m.scanBulk() {
		return // a needed leader is missing; retry next tick
	}
	m.bulkDone = true
	if len(m.queue) == 0 {
		m.phase = phaseDrain // nothing resident in the moved span
	}
}

// scanBulk exports the moved span from every authoritative source as
// byte-capped OpInstallSpan chunks and queues them for streaming. It
// runs at most once per migration; ok is false while a needed leader is
// missing. The export pairs each source with the destination(s) the ring
// assigns: for an add every source feeds the new group, for a remove the
// retiring group feeds each survivor.
func (m *migration) scanBulk() (ok bool) {
	s := m.s
	type job struct{ src, dst GroupID }
	var jobs []job
	if m.kind == "add-group" {
		for g := 0; g < s.router.Groups(); g++ {
			if GroupID(g) != m.target {
				jobs = append(jobs, job{GroupID(g), m.target})
			}
		}
	} else {
		for g := 0; g < s.router.Groups(); g++ {
			jobs = append(jobs, job{m.target, GroupID(g)})
		}
	}
	// Check every needed leader before exporting anything, so a half-done
	// pass is never queued twice.
	for _, j := range jobs {
		if _, ok := s.leaderStore(j.src); !ok {
			return false
		}
		if _, ok := s.leaderStore(j.dst); !ok {
			return false
		}
	}
	// Fix the resident-keyspace denominator (MovedFraction) before any
	// chunk lands: once shipped copies exist at the destinations, the
	// drain scans' totals would double-count them.
	if !m.scanned {
		total := 0
		if m.kind == "add-group" {
			for g := 0; g < s.router.Groups(); g++ {
				if GroupID(g) == m.target {
					continue
				}
				st, _ := s.leaderStore(GroupID(g))
				total += st.Len()
			}
		} else {
			st, _ := s.leaderStore(m.target)
			total = st.Len()
			for g := 0; g < s.router.Groups(); g++ {
				sg, _ := s.leaderStore(GroupID(g))
				total += sg.Len()
			}
		}
		m.scanned = true
		m.stats.TotalKeys = total
	}
	for _, j := range jobs {
		src, _ := s.leaderStore(j.src)
		// The span is the keys this source authoritatively hands to this
		// destination: owned by dst under the new ring, owned by src under
		// the previous one (strays at non-authoritative holders are
		// cleanup's problem, exactly as in the drain scan).
		chunks, keys := src.SpanExport(func(k string) bool {
			if s.router.Route(k) != j.dst {
				return false
			}
			pg, moved := s.router.RoutePrev(k)
			return moved && pg == j.src
		}, migrSpanBytes)
		for _, k := range keys {
			m.moved[k] = true
		}
		for _, c := range chunks {
			m.queue = append(m.queue, copyCmd{dst: j.dst, cmd: kv.Command{
				Op: kv.OpInstallSpan, Client: migrClientID, Value: c,
			}})
		}
		m.stats.BulkChunks += len(chunks)
	}
	return true
}

func (m *migration) drainTick(now time.Duration) {
	if m.confirmWaits(now) {
		return
	}
	if len(m.queue) > 0 {
		m.stream(now)
		return
	}
	// The flip-time barriers must clear before cutover: only then is it
	// certain no pre-flip client write is still queued at a source leader
	// where the scans (and later the cleanup deletes) would miss it.
	barriered := m.barriersClear(now)
	done, ok := m.scanDrain()
	if !ok {
		return // a needed leader is missing; retry next tick
	}
	if done && barriered {
		m.cutover(now)
	}
}

// scanDrain runs one convergence pass: it fills m.queue with the copy
// commands still needed and reports done when nothing was left to copy.
// ok is false when a source (or the destination, for value comparison)
// had no leader, in which case the pass is inconclusive.
func (m *migration) scanDrain() (done, ok bool) {
	s := m.s
	if m.kind == "add-group" {
		dstStore, ok := s.leaderStore(m.target)
		if !ok {
			return false, false
		}
		total := 0
		for g := 0; g < s.router.Groups(); g++ {
			if GroupID(g) == m.target {
				continue
			}
			src, ok := s.leaderStore(GroupID(g))
			if !ok {
				return false, false
			}
			total += src.Len()
			for _, k := range src.SortedKeys() {
				if s.router.Route(k) != m.target {
					continue
				}
				// Stream only from the key's authoritative previous-epoch
				// owner. A stray duplicate at another group (left by an
				// aborted earlier move) may hold a different value; letting
				// two sources both feed the destination would make the
				// convergence scans oscillate between the copies forever.
				// Cleanup deletes the stray later.
				if pg, ok := s.router.RoutePrev(k); !ok || pg != GroupID(g) {
					continue
				}
				m.enqueueCopy(src, dstStore, m.target, k)
			}
		}
		m.noteScan(total)
		return len(m.queue) == 0, true
	}
	// remove-group: every key the retiring group owns moves to its new
	// owner among the survivors (strays it merely holds are dropped with
	// the group).
	src, okSrc := s.leaderStore(m.target)
	if !okSrc {
		return false, false
	}
	total := src.Len()
	for g := 0; g < s.router.Groups(); g++ {
		st, ok := s.leaderStore(GroupID(g))
		if !ok {
			return false, false
		}
		total += st.Len()
	}
	dsts := make(map[GroupID]*kv.Store, s.router.Groups())
	for _, k := range src.SortedKeys() {
		if pg, ok := s.router.RoutePrev(k); !ok || pg != m.target {
			continue
		}
		dst := s.router.Route(k)
		dstStore, ok := dsts[dst]
		if !ok {
			dstStore, ok = s.leaderStore(dst)
			if !ok {
				return false, false
			}
			dsts[dst] = dstStore
		}
		m.enqueueCopy(src, dstStore, dst, k)
	}
	m.noteScan(total)
	return len(m.queue) == 0, true
}

// enqueueCopy queues key for streaming unless the destination already
// holds an identical value (a previous round's copy landed).
func (m *migration) enqueueCopy(src, dst *kv.Store, dstG GroupID, k string) {
	v, ok := src.Get(k)
	if !ok {
		return // raced away between SortedKeys and Get — nothing to move
	}
	m.moved[k] = true
	if dv, have := dst.Get(k); have && bytes.Equal(dv, v) {
		return
	}
	m.queue = append(m.queue, copyCmd{dst: dstG, cmd: kv.Command{
		Op: kv.OpPut, Client: migrClientID, Key: k, Value: v,
	}})
}

// noteScan records one convergence pass; the first pass fixes the
// resident-keyspace denominator of MovedFraction.
func (m *migration) noteScan(total int) {
	m.rounds++
	if !m.scanned {
		m.scanned = true
		m.stats.TotalKeys = total
	}
}

// stream proposes up to migrBatch queued copies, batched per destination
// through the same LeaderProposeBatch path client traffic pays, and arms
// the confirmation wait on each destination's idempotence table.
func (m *migration) stream(now time.Duration) {
	n := len(m.queue)
	if n > migrBatch {
		n = migrBatch
	}
	chunk := m.queue[:n]
	m.queue = m.queue[n:]

	var order []GroupID
	byDst := map[GroupID][][]byte{}
	lastSeq := map[GroupID]uint64{}
	for _, cc := range chunk {
		m.s.migrSeq++
		cmd := cc.cmd
		cmd.Seq = m.s.migrSeq
		if _, seen := byDst[cc.dst]; !seen {
			order = append(order, cc.dst)
		}
		byDst[cc.dst] = append(byDst[cc.dst], kv.Encode(cmd))
		lastSeq[cc.dst] = cmd.Seq
	}
	for _, dst := range order {
		// A destination without a leader (or a propose that errors) is not
		// retried here: its seqs burn, the wait times out, and the next
		// convergence scan re-copies the still-missing keys — but the
		// failure is counted, never swallowed (RebalanceStats.ProposeErrors).
		m.stats.ProposeOps += len(byDst[dst])
		if !m.s.groups[dst].LeaderProposeBatch(byDst[dst], func(_, _ uint64, err error) {
			if err != nil {
				m.proposeErrs++
			}
		}) {
			m.proposeErrs++
		}
		m.waits[dst] = lastSeq[dst]
	}
	m.waitBy = now + migrWait
}

// cutover is the serve point: the drain has converged, so the fence lifts
// (parked writes flush to the new owners on the generator's next tick)
// and the cleanup of stale source copies begins.
func (m *migration) cutover(now time.Duration) {
	m.stats.CutoverMs = ms(now)
	m.stats.MovedKeys = len(m.moved)
	m.stats.DrainRounds = m.rounds
	if m.stats.TotalKeys > 0 {
		m.stats.MovedFraction = float64(len(m.moved)) / float64(m.stats.TotalKeys)
	}
	m.phase = phaseCleanup
}

func (m *migration) cleanupTick(now time.Duration) {
	if m.confirmWaits(now) {
		return
	}
	if len(m.queue) > 0 {
		m.stream(now)
		return
	}
	if m.kind == "remove-group" {
		// The retiring group's copies leave with the group itself.
		m.finish(now)
		return
	}
	// add-group: delete every key a serving group still holds but no
	// longer owns (the moved keys' source copies). In snapshot-ship mode
	// the stale keys retire as OpDeleteSpan chunks — the cleanup stays
	// O(chunks) like the bulk phase — while key-stream mode pays one
	// OpDelete per key, preserving the A/B comparison end to end.
	clean := true
	for g := 0; g < m.s.router.Groups(); g++ {
		if GroupID(g) == m.target {
			continue
		}
		st, ok := m.s.leaderStore(GroupID(g))
		if !ok {
			return // retry next tick
		}
		var stale []string
		for _, k := range st.SortedKeys() {
			if m.s.router.Route(k) != GroupID(g) {
				clean = false
				stale = append(stale, k)
			}
		}
		if m.s.opts.MigrateKeyStream {
			for _, k := range stale {
				m.queue = append(m.queue, copyCmd{dst: GroupID(g), cmd: kv.Command{
					Op: kv.OpDelete, Client: migrClientID, Key: k,
				}})
			}
			continue
		}
		for _, chunk := range spanDeleteChunks(stale, migrSpanBytes) {
			m.queue = append(m.queue, copyCmd{dst: GroupID(g), cmd: kv.Command{
				Op: kv.OpDeleteSpan, Client: migrClientID, Value: chunk,
			}})
		}
	}
	if clean {
		m.finish(now)
	}
}

// spanDeleteChunks packs keys into byte-capped OpDeleteSpan payloads
// (span chunks with empty values), mirroring SpanExport's chunking.
func spanDeleteChunks(keys []string, maxBytes int) [][]byte {
	var chunks [][]byte
	var pairs []kv.Pair
	cur := 4
	for _, k := range keys {
		cost := 8 + len(k)
		if len(pairs) > 0 && cur+cost > maxBytes {
			chunks = append(chunks, kv.EncodeSpan(pairs))
			pairs, cur = nil, 4
		}
		pairs = append(pairs, kv.Pair{Key: k})
		cur += cost
	}
	if len(pairs) > 0 {
		chunks = append(chunks, kv.EncodeSpan(pairs))
	}
	return chunks
}

// finish retires the migration: decommission for remove, stats recorded,
// dual-read fallback off.
func (m *migration) finish(now time.Duration) {
	s := m.s
	if m.kind == "remove-group" {
		s.pauseGroup(m.target)
	}
	m.stats.ProposeErrors = m.proposeErrs
	m.stats.DoneMs = ms(now)
	s.rebalances = append(s.rebalances, m.stats)
	s.migr = nil
}

// leaderStore returns group g's leader-local store, or ok=false while the
// group has no leader.
func (s *Cluster) leaderStore(g GroupID) (*kv.Store, bool) {
	lead := s.groups[g].Leader()
	if lead == nil {
		return nil, false
	}
	return s.groups[g].Store(lead.ID()), true
}

// pauseGroup freezes every node of a retired group — the decommission
// model: the processes stop doing work but the slot remains reusable by a
// later AddGroupLive. The slot is marked retired so leader scans skip it;
// on the consolidated fabric the frozen runtimes also stop contributing
// timers (their table entries die as spurious wakeups) and drop any
// envelope payloads still in flight to them.
func (s *Cluster) pauseGroup(g GroupID) {
	c := s.groups[g]
	for i := 1; i <= s.opts.NodesPerGroup; i++ {
		if !c.Paused(raft.ID(i)) {
			c.Pause(raft.ID(i))
		}
	}
	s.retired[g] = true
}
