package netsim

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"dynatune/internal/sim"
)

// reorderRun sends n sequenced packets 0..n-1 over link 0→1 (optionally
// under an open reorder window) and returns the delivery order.
func reorderRun(seed int64, window time.Duration, n int) []int {
	eng := sim.NewEngine(seed)
	var got []int
	nw := New(eng, 2, Constant(Params{RTT: 10 * time.Millisecond}), func(to, msg int) {
		got = append(got, msg)
	})
	if window > 0 {
		nw.ReorderWindow(0, 1, window)
	}
	for i := 0; i < n; i++ {
		nw.Send(0, 1, UDP, i)
	}
	eng.Run(eng.Now() + time.Second)
	return got
}

// TestReorderWindowPermutesHeldPackets pins the burst semantics: packets
// crossing the link during an open window are all delivered — exactly
// once each — but in a seed-permuted order, while the same traffic with
// no window arrives in send order.
func TestReorderWindowPermutesHeldPackets(t *testing.T) {
	const n = 16
	plain := reorderRun(7, 0, n)
	if !sort.IntsAreSorted(plain) {
		t.Fatalf("jitter-free UDP stream delivered out of order without a window: %v", plain)
	}
	held := reorderRun(7, 50*time.Millisecond, n)
	if len(held) != n {
		t.Fatalf("reorder window lost packets: delivered %d of %d", len(held), n)
	}
	seen := map[int]bool{}
	for _, m := range held {
		if seen[m] {
			t.Fatalf("packet %d delivered twice: %v", m, held)
		}
		seen[m] = true
	}
	if sort.IntsAreSorted(held) {
		t.Fatalf("16 held packets released in send order — window did not permute (seed 7): %v", held)
	}
}

// TestReorderDeterministicPerSeed pins that the permutation is a pure
// function of the engine seed.
func TestReorderDeterministicPerSeed(t *testing.T) {
	a := reorderRun(11, 50*time.Millisecond, 12)
	b := reorderRun(11, 50*time.Millisecond, 12)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different permutations:\n %v\n %v", a, b)
	}
}

// TestReorderWindowExtends pins the extension rule: re-opening an already
// open window pushes the deadline out instead of flushing early, so one
// long burst forms instead of two short ones.
func TestReorderWindowExtends(t *testing.T) {
	eng := sim.NewEngine(3)
	var gotAt []time.Duration
	nw := New(eng, 2, Constant(Params{RTT: 2 * time.Millisecond}), func(to, msg int) {
		gotAt = append(gotAt, eng.Now())
	})
	nw.ReorderWindow(0, 1, 20*time.Millisecond)
	nw.Send(0, 1, UDP, 0)
	eng.Run(eng.Now() + 10*time.Millisecond)
	nw.ReorderWindow(0, 1, 30*time.Millisecond) // extends to t=40ms
	nw.Send(0, 1, UDP, 1)
	eng.Run(eng.Now() + 100*time.Millisecond)
	if len(gotAt) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(gotAt))
	}
	for i, at := range gotAt {
		if at < 40*time.Millisecond {
			t.Fatalf("packet %d released at %v, before the extended window closed (40ms)", i, at)
		}
	}

	// After the flush the link reorders nothing: traffic flows normally.
	before := len(gotAt)
	nw.Send(0, 1, UDP, 2)
	eng.Run(eng.Now() + 10*time.Millisecond)
	if len(gotAt) != before+1 {
		t.Fatalf("post-window packet not delivered promptly")
	}
}
