package shard

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/kv"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
	"dynatune/internal/sim"
)

// Options configure a sharded Cluster.
type Options struct {
	// Groups is the number of independent Raft groups (default 4).
	Groups int
	// NodesPerGroup is each group's replication factor (default 3).
	NodesPerGroup int
	Seed          int64
	// Variant selects the system under test per group; every group gets
	// its own tuner instances (one per node, as in the single-group
	// testbed).
	Variant cluster.Variant
	// Profile is the shared WAN schedule: every group's links follow the
	// same netsim profile, modelling shards co-deployed on one network.
	Profile netsim.Profile
	// Replicas is the router's virtual-node count (0 = DefaultReplicas).
	Replicas int
	// Cost overrides the per-node CPU cost model (zero = calibrated
	// default).
	Cost cluster.CostModel
}

func (o Options) withDefaults() Options {
	if o.Groups == 0 {
		o.Groups = 4
	}
	if o.NodesPerGroup == 0 {
		o.NodesPerGroup = 3
	}
	// Seed 0 is preserved as an explicit seed, consistent with the sweep
	// layer's UnitSeed. (It used to alias seed 1, which silently folded
	// seed-0 campaign cells onto their seed-1 neighbours.)
	return o
}

// Cluster is a sharded deployment: G Raft groups sharing one virtual
// clock, with a consistent-hash router in front. Each group is a full
// cluster.Cluster — own netsim mesh (same profile), own kv stores, own
// tuners, own leader — so failures and tuning in one group never touch
// another.
//
// The group set is dynamic: AddGroupLive / RemoveGroupLive (migrate.go)
// grow or shrink it mid-run with a drain → cutover → serve migration.
// Retired groups keep their slot in the group table (paused) so GroupIDs
// stay stable; Groups() counts the serving groups, GroupSlots() the table.
type Cluster struct {
	opts   Options
	eng    *sim.Engine
	router *Router
	groups []*cluster.Cluster

	seq     uint64 // client sequence for direct Puts
	migrSeq uint64 // migration-stream sequence (client migrClientID)

	migr       *migration
	rebalances []scenario.RebalanceStats

	// onGroupAdded observers fire after a new group is built but before
	// it starts (so a load generator can wire SetOnApply). Epoch flips
	// have no callback: consumers poll Epoch(), which flips at most once
	// per migration.
	onGroupAdded []func(GroupID)
}

// shardClientID marks direct Put traffic in the kv idempotence table,
// distinct from the load generator's client 1.
const shardClientID = 2

// New builds (but does not start) a sharded cluster.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	s := &Cluster{
		opts:   opts,
		eng:    sim.NewEngine(opts.Seed),
		router: NewRouter(opts.Groups, opts.Replicas),
	}
	s.groups = make([]*cluster.Cluster, opts.Groups)
	for g := range s.groups {
		s.groups[g] = cluster.NewWithEngine(s.eng, cluster.Options{
			N:       opts.NodesPerGroup,
			Variant: opts.Variant,
			Profile: opts.Profile,
			Cost:    opts.Cost,
		})
	}
	return s
}

// Start arms every node in every group; per-group elections follow.
func (s *Cluster) Start() {
	for _, c := range s.groups {
		c.Start()
	}
}

// Engine exposes the shared simulation engine.
func (s *Cluster) Engine() *sim.Engine { return s.eng }

// Router exposes the key→group mapping.
func (s *Cluster) Router() *Router { return s.router }

// Epoch returns the router's ring version (bumped by every live move).
func (s *Cluster) Epoch() int { return s.router.Epoch() }

// Groups returns the number of serving Raft groups under the current
// routing epoch.
func (s *Cluster) Groups() int { return s.router.Groups() }

// GroupSlots returns the size of the group table, including slots retired
// by RemoveGroupLive; per-group bookkeeping (load generators) indexes by
// slot so GroupIDs stay stable across the lifecycle.
func (s *Cluster) GroupSlots() int { return len(s.groups) }

// Group returns one group's underlying cluster.
func (s *Cluster) Group(g GroupID) *cluster.Cluster { return s.groups[g] }

// OnGroupAdded registers an observer of new groups, called after the
// group is built but before it starts — the point where a load generator
// must wire SetOnApply.
func (s *Cluster) OnGroupAdded(fn func(GroupID)) { s.onGroupAdded = append(s.onGroupAdded, fn) }

// Now returns virtual time.
func (s *Cluster) Now() time.Duration { return s.eng.Now() }

// Run advances the whole deployment (all groups share the clock) by d.
func (s *Cluster) Run(d time.Duration) { s.eng.Run(s.eng.Now() + d) }

// Leader returns group g's live leader, or nil.
func (s *Cluster) Leader(g GroupID) *raft.Node { return s.groups[g].Leader() }

// HasLeaders reports whether every serving group currently has a leader.
// (A group still booting inside an add migration, or retired by a remove,
// is not a serving group.)
func (s *Cluster) HasLeaders() bool {
	for g := 0; g < s.router.Groups(); g++ {
		if s.migr != nil && s.migr.kind == "add-group" && s.migr.phase == phasePrepare &&
			GroupID(g) == s.migr.target {
			continue
		}
		if s.groups[g].Leader() == nil {
			return false
		}
	}
	return true
}

// WaitLeaders runs until every group has elected a leader, up to timeout.
func (s *Cluster) WaitLeaders(timeout time.Duration) bool {
	deadline := s.eng.Now() + timeout
	for s.eng.Now() < deadline {
		if s.HasLeaders() {
			return true
		}
		s.Run(10 * time.Millisecond)
	}
	return s.HasLeaders()
}

// Put routes key to its group, proposes the write on that group's leader
// and advances the simulation until the command applies there (or timeout
// elapses). It is the testbed's synchronous client call. While the key is
// fenced by a live migration the call waits for the cutover first — the
// blocked span is exactly the mid-move write latency the rebalance
// scenarios measure.
func (s *Cluster) Put(key string, value []byte, timeout time.Duration) error {
	deadline := s.eng.Now() + timeout
	for s.Fenced(key) {
		if s.eng.Now() >= deadline {
			return fmt.Errorf("shard: key %q stayed fenced by a group migration for %v", key, timeout)
		}
		s.Run(time.Millisecond)
	}
	g := s.router.Route(key)
	c := s.groups[g]
	s.seq++
	seq := s.seq
	data := kv.Encode(kv.Command{
		Op: kv.OpPut, Client: shardClientID, Seq: seq, Key: key, Value: value,
	})
	// Propose through LeaderProposeBatch so synchronous Puts pay the same
	// leader CPU cost (and queue behind the same backlog) as every other
	// client path — a free side door would skew the utilization and
	// saturation curves the testbed measures.
	var (
		idx      uint64
		perr     error
		proposed bool
	)
	if !c.LeaderProposeBatch([][]byte{data}, func(first, _ uint64, err error) {
		idx, perr, proposed = first, err, true
	}) {
		return fmt.Errorf("shard: group %d has no leader", g)
	}
	for s.eng.Now() < deadline && !proposed {
		s.Run(time.Millisecond)
	}
	if !proposed {
		return fmt.Errorf("shard: group %d leader did not process the propose within %v", g, timeout)
	}
	if perr != nil {
		return fmt.Errorf("shard: group %d propose: %w", g, perr)
	}
	for s.eng.Now() < deadline {
		// Poll the group's *current* leader each iteration: the proposer
		// may be paused or deposed mid-wait, and its stalled store would
		// time out a write that in fact committed on its successor.
		if cur := c.Leader(); cur != nil {
			store := c.Store(cur.ID())
			if store.AppliedIndex() >= idx {
				// Applied is not committed-as-proposed: a newer leader may
				// have overwritten idx with its own entry. The idempotence
				// table is the authoritative witness — no later seq of this
				// client can exist while this call blocks, and it rides in
				// snapshots, so it stays valid even if idx was compacted
				// away before this node caught up.
				if store.LastSeq(shardClientID) >= seq {
					return nil
				}
				return fmt.Errorf("shard: group %d write at index %d was superseded by a newer leader", g, idx)
			}
		}
		s.Run(time.Millisecond)
	}
	return fmt.Errorf("shard: group %d did not commit index %d within %v", g, idx, timeout)
}

// Get reads key from its group leader's store (leader-local reads, the
// same consistency the single-group testbed serves). Before a migration's
// cutover it dual-reads: a miss at the key's current owner falls back to
// its previous-epoch owner, so a read can never miss a key that committed
// before the move (the copy stream may simply not have reached it yet —
// and the write fence guarantees the source copy is never stale). After
// cutover the destination is authoritative and a miss stays a miss. It
// returns false when the key is absent or the group momentarily has no
// leader.
func (s *Cluster) Get(key string) ([]byte, bool) {
	if v, ok := s.getFrom(s.router.Route(key), key); ok {
		return v, true
	}
	if s.dualReadActive() {
		if pg, ok := s.router.RoutePrev(key); ok {
			return s.getFrom(pg, key)
		}
	}
	return nil, false
}

func (s *Cluster) getFrom(g GroupID, key string) ([]byte, bool) {
	lead := s.groups[g].Leader()
	if lead == nil {
		return nil, false
	}
	return s.groups[g].Store(lead.ID()).Get(key)
}

// MultiGet is the cross-shard read path: it partitions keys by group and
// reads each batch from that group's leader, with the same per-key
// dual-read fallback as Get during a migration. The result is per-group
// leader-local consistent but is not a snapshot across groups — groups
// commit independently, which is the price of sharding (and exactly what
// a future cross-shard transaction PR would address). Missing keys are
// absent from the result.
func (s *Cluster) MultiGet(keys ...string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for g, ks := range s.router.Partition(keys) {
		lead := s.groups[g].Leader()
		var store *kv.Store
		if lead != nil {
			store = s.groups[g].Store(lead.ID())
		}
		for _, k := range ks {
			if store != nil {
				if v, ok := store.Get(k); ok {
					out[k] = v
					continue
				}
			}
			if s.dualReadActive() {
				if pg, ok := s.router.RoutePrev(k); ok {
					if v, ok := s.getFrom(pg, k); ok {
						out[k] = v
					}
				}
			}
		}
	}
	return out
}

// CompactAll compacts every node's log in every group.
func (s *Cluster) CompactAll(keepLast uint64) {
	for _, c := range s.groups {
		c.CompactAll(keepLast)
	}
}
