// Package cluster is the simulated testbed: it wires raft nodes, tuners,
// the kv state machine, the network simulator and a CPU cost model into a
// reproducible cluster, and provides the failure-injection primitives
// (pause, crash+restart, partitions) and measurement probes the
// experiments use. Experiment orchestration itself lives in
// internal/scenario — the Run* entry points here are thin spec
// constructors over that engine, bound to this testbed via ScenarioEnv.
package cluster

import (
	"fmt"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/geo"
	"dynatune/internal/kv"
	"dynatune/internal/metrics"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
	"dynatune/internal/storage"
	"dynatune/internal/trace"
)

// Variant selects the system under test: the paper's Dynatune, the etcd
// baseline ("Raft"), the aggressive static baseline ("Raft-Low"), or the
// Fix-K ablation.
type Variant struct {
	Name string
	// NewTuner builds one tuner per node.
	NewTuner func() raft.Tuner
	// HeartbeatClass is UDP for Dynatune's hybrid transport (§III-E), TCP
	// for stock etcd.
	HeartbeatClass netsim.Class
	// Tuned enables the tuning-overhead components of the cost model.
	Tuned bool
	// SuppressHeartbeats / ConsolidateTimers enable the paper's §IV-E
	// future-work optimizations on the raft layer.
	SuppressHeartbeats bool
	ConsolidateTimers  bool
}

// Paper defaults (§IV-A): Et=1000 ms, h=100 ms.
const (
	BaselineEt = 1000 * time.Millisecond
	BaselineH  = 100 * time.Millisecond
)

// VariantRaft is the etcd-default baseline.
func VariantRaft() Variant {
	return Variant{
		Name:           "Raft",
		NewTuner:       func() raft.Tuner { return raft.NewStaticTuner(BaselineEt, BaselineH) },
		HeartbeatClass: netsim.TCP,
	}
}

// VariantRaftLow is the paper's aggressive static baseline: parameters at
// one tenth of the defaults (§IV-C1).
func VariantRaftLow() Variant {
	return Variant{
		Name:           "Raft-Low",
		NewTuner:       func() raft.Tuner { return raft.NewStaticTuner(BaselineEt/10, BaselineH/10) },
		HeartbeatClass: netsim.TCP,
	}
}

// VariantDynatune is the paper's system with the given options
// (zero-valued fields take the paper's defaults).
func VariantDynatune(opts dynatune.Options) Variant {
	return Variant{
		Name:           "Dynatune",
		NewTuner:       func() raft.Tuner { return dynatune.MustNew(opts) },
		HeartbeatClass: netsim.UDP,
		Tuned:          true,
	}
}

// VariantDynatuneExt is Dynatune plus both §IV-E future-work
// optimizations: heartbeat suppression under replication load and a
// consolidated leader heartbeat timer.
func VariantDynatuneExt(opts dynatune.Options) Variant {
	v := VariantDynatune(opts)
	v.Name = "Dynatune-Ext"
	v.SuppressHeartbeats = true
	v.ConsolidateTimers = true
	return v
}

// VariantFixK is Dynatune with loss-adaptive K disabled (fixed at k), the
// §IV-C2 comparison point.
func VariantFixK(k int) Variant {
	return Variant{
		Name: fmt.Sprintf("Fix-K(%d)", k),
		NewTuner: func() raft.Tuner {
			return dynatune.MustNew(dynatune.Options{FixK: k})
		},
		HeartbeatClass: netsim.UDP,
		Tuned:          true,
	}
}

// Options configure a Cluster.
type Options struct {
	N       int
	Seed    int64
	Variant Variant
	// Profile is the uniform all-links network schedule; Regions, if set,
	// overrides it with the geo matrix (one region per node).
	Profile netsim.Profile
	Regions []geo.Region
	// GeoJitterFrac / GeoLoss parameterize the geo links.
	GeoJitterFrac float64
	GeoLoss       float64

	// InitialMembers, when non-zero, makes only nodes 1..InitialMembers
	// initial voters; the rest start as self-declared learners outside the
	// cluster, waiting to be added via ProposeConfChange (the membership
	// experiment uses this).
	InitialMembers int

	// Persist gives every node a durable store (storage.Memory) and
	// enables the crash-restart failure mode: Crash drops a node's entire
	// volatile state — including Dynatune's measurement lists — and
	// Restart rebuilds it from the persisted term/vote/log, modelling the
	// paper's §III-A crash-recovery fault class (Pause models only the
	// crash/freeze class).
	Persist bool

	// Snapshot is the automatic snapshot-at-index policy: when armed, each
	// node snapshots its kv store and truncates the log whenever the live
	// tail outgrows the policy's entry/byte thresholds. The zero value
	// disables it, leaving compaction to explicit CompactAll calls (the
	// pre-policy behaviour every golden was recorded under).
	Snapshot raft.SnapshotPolicy
	// SnapshotChunk bounds one streamed InstallSnapshot message's payload;
	// 0 keeps the legacy single-envelope transfer.
	SnapshotChunk int

	// Fabric, when set, attaches this cluster as one group of a
	// consolidated multi-Raft deployment: instead of building a private
	// netsim mesh and per-timer engine events, the group shares the
	// fabric's physical mesh (envelope-multiplexed, per-node-pair batched)
	// and per-node tick driver with every other attached group. Profile is
	// ignored (the fabric owns the links) and Regions are unsupported. The
	// engine must be the fabric's.
	Fabric *Fabric

	Cost CostModel
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Variant.NewTuner == nil {
		o.Variant = VariantRaft()
	}
	if o.Profile.Segments == nil {
		o.Profile = netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond})
	}
	if o.Cost.Cores == 0 {
		o.Cost = DefaultCostModel()
	}
	return o
}

// Cluster is a simulated deployment of N nodes.
type Cluster struct {
	opts Options
	eng  *sim.Engine
	net  *netsim.Network[raft.Message] // nil when fabric-attached
	rec  *trace.Recorder
	cost CostModel

	// fabric / fabricUID are set when this cluster is one group of a
	// consolidated multi-Raft deployment (Options.Fabric).
	fabric    *Fabric
	fabricUID int

	nodes      []*raft.Node
	rts        []*nodeRT
	tuners     []raft.Tuner
	stores     []*kv.Store
	persisters []*storage.Memory

	// onApply, when set before Start (see client.go), observes every
	// node's applied entries — the load generator uses it to complete
	// in-flight requests on the leader.
	onApply func(raft.ID, []raft.Entry)
}

// New builds (but does not start) a cluster with its own private engine.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	return build(sim.NewEngine(opts.Seed), opts)
}

// NewWithEngine builds a cluster on a caller-owned engine, letting several
// clusters share one virtual clock — the shard layer runs N independent
// Raft groups on a single engine this way. opts.Seed is ignored: all
// randomness comes from eng.
func NewWithEngine(eng *sim.Engine, opts Options) *Cluster {
	opts = opts.withDefaults()
	return build(eng, opts)
}

func build(eng *sim.Engine, opts Options) *Cluster {
	c := &Cluster{
		opts: opts,
		eng:  eng,
		rec:  trace.NewRecorder(),
		cost: opts.Cost,
	}
	if opts.Fabric != nil {
		if len(opts.Regions) > 0 {
			panic("cluster: geo regions are per-link state; a fabric-attached group shares the physical mesh")
		}
		c.fabric = opts.Fabric
		c.fabricUID = opts.Fabric.attach(c)
	} else {
		c.net = netsim.New[raft.Message](c.eng, opts.N, opts.Profile, func(to int, m raft.Message) {
			c.rts[to].deliver(m)
		})
		if len(opts.Regions) > 0 {
			if len(opts.Regions) != opts.N {
				panic(fmt.Sprintf("cluster: %d regions for %d nodes", len(opts.Regions), opts.N))
			}
			geo.ApplyToNetwork(c.net, opts.Regions, opts.GeoJitterFrac, opts.GeoLoss)
		}
	}
	c.rts = make([]*nodeRT, opts.N)
	c.nodes = make([]*raft.Node, opts.N)
	c.tuners = make([]raft.Tuner, opts.N)
	c.stores = make([]*kv.Store, opts.N)
	c.persisters = make([]*storage.Memory, opts.N)
	for i := 0; i < opts.N; i++ {
		c.rts[i] = &nodeRT{
			c:       c,
			id:      raft.ID(i + 1),
			proc:    sim.NewProc(c.eng),
			timers:  map[timerKey]sim.Handle{},
			tuned:   opts.Variant.Tuned,
			hbClass: opts.Variant.HeartbeatClass,
		}
		if c.fabric != nil {
			c.rts[i].fnode = c.fabric.nodes[i]
			c.rts[i].fabUID = c.fabricUID
			c.rts[i].initDrain()
		}
		if opts.Persist {
			c.persisters[i] = storage.NewMemory()
		}
		c.buildNode(i, nil)
	}
	return c
}

// buildNode constructs (or, with restored state, reconstructs) node i's
// volatile half: a fresh raft.Node, tuner and state machine wired to the
// node's persistent runtime adapter. Restart uses it to model a
// crash-recovered process: only what the Persister holds survives.
func (c *Cluster) buildNode(i int, restored *raft.Restored) {
	rt := c.rts[i]
	members := c.opts.InitialMembers
	if members <= 0 || members > c.opts.N {
		members = c.opts.N
	}
	peers := make([]raft.ID, members)
	for j := range peers {
		peers[j] = raft.ID(j + 1)
	}
	var learners []raft.ID
	if int(rt.id) > members {
		// A not-yet-added node: it knows the existing voters and itself as
		// a prospective learner; the committed conf change makes it real.
		learners = []raft.ID{rt.id}
	}
	tuner := c.opts.Variant.NewTuner()
	store := kv.NewStore()
	var persister raft.Persister
	if c.persisters[i] != nil {
		persister = c.persisters[i]
	}
	node, err := raft.NewNode(raft.Config{
		ID:                                raft.ID(i + 1),
		Peers:                             peers,
		Learners:                          learners,
		Runtime:                           rt,
		Tuner:                             tuner,
		Tracer:                            c.rec,
		Persister:                         persister,
		Restored:                          restored,
		SuppressHeartbeatWhileReplicating: c.opts.Variant.SuppressHeartbeats,
		ConsolidatedHeartbeats:            c.opts.Variant.ConsolidateTimers,
		Snapshot:                          c.opts.Snapshot,
		SnapshotChunk:                     c.opts.SnapshotChunk,
		SnapshotData: func() []byte {
			rt.proc.Charge(c.cost.SnapshotMarshal)
			return store.MarshalSnapshot()
		},
		RestoreSnapshot: func(data []byte, index uint64) {
			rt.proc.Charge(c.cost.SnapshotRestore)
			if err := store.RestoreSnapshot(data, index); err != nil {
				panic(err)
			}
		},
		Apply: func(ents []raft.Entry) {
			rt.proc.Charge(time.Duration(len(ents)) * c.cost.ApplyEntry)
			store.Apply(ents)
			if c.onApply != nil {
				c.onApply(rt.id, ents)
			}
		},
	})
	if err != nil {
		panic(err)
	}
	rt.node = node
	c.nodes[i] = node
	c.tuners[i] = tuner
	c.stores[i] = store
}

// Start arms every node's election timer; the first election follows.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// --- accessors ---

// Engine exposes the simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// SetOnApply registers an observer of every node's applied entries. It
// must be called before Start; the load generators (cluster.LoadGen and
// the shard layer's) use it to complete in-flight requests.
func (c *Cluster) SetOnApply(fn func(raft.ID, []raft.Entry)) { c.onApply = fn }

// Network exposes the cluster's private simulated mesh. It is nil for a
// fabric-attached group, whose traffic rides the shared physical mesh
// (Fabric.Net) instead — fault injection there targets physical links
// once, for every co-located group.
func (c *Cluster) Network() *netsim.Network[raft.Message] { return c.net }

// Fabric returns the consolidation fabric this cluster is attached to,
// or nil for a standalone cluster.
func (c *Cluster) Fabric() *Fabric { return c.fabric }

// MaxApplied returns the highest applied index across the cluster's
// nodes — the floor below which no fresh proposal can land (see
// Inflight.Record).
func (c *Cluster) MaxApplied() uint64 {
	var m uint64
	for _, st := range c.stores {
		if a := st.AppliedIndex(); a > m {
			m = a
		}
	}
	return m
}

// ApplyGate returns the completion gate both load generators feed to
// Inflight.ResolveApplied: the current leader's applied index — the
// client-visible commit point — or, during a leaderless window (e.g. the
// committing leader paused after broadcasting commit but before
// applying), the highest applied index across nodes, since each node
// applies an index exactly once and deferring would strand committed
// entries.
func (c *Cluster) ApplyGate() uint64 {
	if lead := c.Leader(); lead != nil {
		return c.Store(lead.ID()).AppliedIndex()
	}
	return c.MaxApplied()
}

// Recorder exposes the event trace.
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// Node returns node id (1-based).
func (c *Cluster) Node(id raft.ID) *raft.Node { return c.nodes[id-1] }

// Store returns node id's kv store.
func (c *Cluster) Store(id raft.ID) *kv.Store { return c.stores[id-1] }

// Tuner returns node id's tuner.
func (c *Cluster) Tuner(id raft.ID) raft.Tuner { return c.tuners[id-1] }

// DynatuneTuner returns node id's tuner as *dynatune.Tuner (nil for
// static variants).
func (c *Cluster) DynatuneTuner(id raft.ID) *dynatune.Tuner {
	t, _ := c.tuners[id-1].(*dynatune.Tuner)
	return t
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.opts.N }

// Now returns virtual time.
func (c *Cluster) Now() time.Duration { return c.eng.Now() }

// Run advances the simulation by d.
func (c *Cluster) Run(d time.Duration) { c.eng.Run(c.eng.Now() + d) }

// Leader returns the live leader with the highest term, or nil.
func (c *Cluster) Leader() *raft.Node {
	var lead *raft.Node
	for i, n := range c.nodes {
		if c.rts[i].paused {
			continue
		}
		if n.State() == raft.StateLeader && (lead == nil || n.Term() > lead.Term()) {
			lead = n
		}
	}
	return lead
}

// WaitLeader runs until a leader exists, up to timeout; it returns nil on
// timeout.
func (c *Cluster) WaitLeader(timeout time.Duration) *raft.Node {
	deadline := c.eng.Now() + timeout
	for c.eng.Now() < deadline {
		if l := c.Leader(); l != nil {
			return l
		}
		c.Run(10 * time.Millisecond)
	}
	return c.Leader()
}

// --- failure injection (paper §IV-B1: container pause) ---

// Pause freezes node id.
func (c *Cluster) Pause(id raft.ID) {
	c.rts[id-1].pause()
	c.rec.MarkNodeDown(c.eng.Now(), id)
}

// Resume unfreezes node id.
func (c *Cluster) Resume(id raft.ID) { c.rts[id-1].resume() }

// Paused reports whether node id is frozen.
func (c *Cluster) Paused(id raft.ID) bool { return c.rts[id-1].paused }

// PauseLeader freezes the current leader and returns its ID and the
// injection time. It panics if there is no leader (callers settle first).
func (c *Cluster) PauseLeader() (raft.ID, time.Duration) {
	l := c.Leader()
	if l == nil {
		panic("cluster: PauseLeader with no leader")
	}
	c.Pause(l.ID())
	return l.ID(), c.eng.Now()
}

// Crash kills node id's process: every piece of volatile state — raft
// role, tuner measurement lists, the applied state machine, timers and
// queued work — is gone. Requires Options.Persist (without a durable
// store a crashed Raft node must not rejoin; use Pause for that model).
func (c *Cluster) Crash(id raft.ID) {
	if c.persisters[id-1] == nil {
		panic("cluster: Crash requires Options.Persist")
	}
	rt := c.rts[id-1]
	rt.pause()
	rt.dropTimers()
	c.rec.MarkNodeDown(c.eng.Now(), id)
}

// Restart brings a crashed node back as a fresh process recovering from
// its durable store. The tuner starts cold: per the paper's §III-B the
// measurement lists are volatile, so the recovered node runs on fallback
// parameters until it has re-collected minListSize samples.
func (c *Cluster) Restart(id raft.ID) {
	i := id - 1
	if c.persisters[i] == nil {
		panic("cluster: Restart requires Options.Persist")
	}
	c.buildNode(int(i), c.persisters[i].Restored())
	rt := c.rts[i]
	rt.paused = false
	rt.proc.Resume()
	rt.node.Start()
}

// CrashLeader crashes the current leader and returns its ID and the
// injection time.
func (c *Cluster) CrashLeader() (raft.ID, time.Duration) {
	l := c.Leader()
	if l == nil {
		panic("cluster: CrashLeader with no leader")
	}
	c.Crash(l.ID())
	return l.ID(), c.eng.Now()
}

// Persister exposes node id's durable store (nil unless Options.Persist).
func (c *Cluster) Persister(id raft.ID) *storage.Memory { return c.persisters[id-1] }

// SetClockSkew skews node id's election timer: every armed delay is
// scaled by (1+drift) and shifted by offset from then on (already-armed
// timers keep their fire times). Drift < 0 models a fast clock — the
// timer fires early, the NTP-error failure mode of the paper's §IV-D
// caveat; (0, 0) restores the true clock. Skew survives Crash/Restart:
// it is a property of the machine, not the process.
func (c *Cluster) SetClockSkew(id raft.ID, offset time.Duration, drift float64) {
	if drift <= -1 {
		panic(fmt.Sprintf("cluster: clock drift %v would run node %d's clock backwards", drift, id))
	}
	rt := c.rts[id-1]
	rt.skewOffset, rt.skewDrift = offset, drift
}

// --- probes ---

// RandomizedTimeouts returns every live node's current randomized election
// timeout.
func (c *Cluster) RandomizedTimeouts() []time.Duration {
	out := make([]time.Duration, 0, len(c.nodes))
	for i, n := range c.nodes {
		if !c.rts[i].paused {
			out = append(out, n.RandomizedTimeout())
		}
	}
	return out
}

// FollowerRandomizedTimeouts returns the randomized election timeouts of
// live non-leader nodes — the population whose timers detect a leader
// failure (the paper's reported per-server randomizedTimeout means).
func (c *Cluster) FollowerRandomizedTimeouts() []time.Duration {
	lead := c.Leader()
	out := make([]time.Duration, 0, len(c.nodes))
	for i, n := range c.nodes {
		if c.rts[i].paused || (lead != nil && n == lead) {
			continue
		}
		out = append(out, n.RandomizedTimeout())
	}
	return out
}

// KthSmallestRandomizedTimeout returns the k-th smallest (1-based)
// randomized timeout across live nodes — the paper plots the third
// smallest, the (f+1)-th, because pre-vote needs a majority (§IV-C1).
func (c *Cluster) KthSmallestRandomizedTimeout(k int) time.Duration {
	ts := c.RandomizedTimeouts()
	if len(ts) == 0 {
		return 0
	}
	// insertion sort; n ≤ 65
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	if k < 1 {
		k = 1
	}
	if k > len(ts) {
		k = len(ts)
	}
	return ts[k-1]
}

// LeaderMeanHeartbeatInterval returns the mean of the leader's per-peer
// heartbeat intervals (what Fig. 7a plots). It returns a documented zero
// whenever there is no usable leader-side state to read — no elected
// leader (mid-election, or every replica paused, as in a retired shard
// group polled mid-consolidated-tick), or a leader whose tuner is being
// rebuilt across a crash-restart — rather than touching nil runtime
// state. Probes sample on a wall schedule, so a zero simply marks a
// leaderless instant in the series.
func (c *Cluster) LeaderMeanHeartbeatInterval() time.Duration {
	l := c.Leader()
	if l == nil {
		return 0
	}
	tuner := c.tuners[l.ID()-1]
	if tuner == nil {
		return 0
	}
	var sum time.Duration
	n := 0
	for _, p := range c.peersOf(l.ID()) {
		sum += tuner.HeartbeatInterval(p)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

func (c *Cluster) peersOf(id raft.ID) []raft.ID {
	out := make([]raft.ID, 0, c.opts.N-1)
	for i := 1; i <= c.opts.N; i++ {
		if raft.ID(i) != id {
			out = append(out, raft.ID(i))
		}
	}
	return out
}

// CPUPercent drains node id's busy window accumulated since the last call
// and converts it to a docker-stats-style percentage of the node's
// multi-core allocation over the given window length.
func (c *Cluster) CPUPercent(id raft.ID, window time.Duration) float64 {
	busy := c.rts[id-1].proc.TakeWindowBusy()
	pct := busy.Seconds() / window.Seconds() * 100 * float64(c.cost.Cores)
	if maxPct := float64(c.cost.Cores) * 100; pct > maxPct {
		pct = maxPct
	}
	return pct
}

// LinkRTT reports the nominal RTT currently in force between two nodes
// (on the shared physical mesh when fabric-attached).
func (c *Cluster) LinkRTT(a, b raft.ID) time.Duration {
	if c.fabric != nil {
		return c.fabric.net.Params(int(a-1), int(b-1)).RTT
	}
	return c.net.Params(int(a-1), int(b-1)).RTT
}

// MessagesSent returns the total messages sent by node id.
func (c *Cluster) MessagesSent(id raft.ID) uint64 { return c.rts[id-1].msgsSent }

// CompactAll compacts every node's log, keeping keepLast entries.
func (c *Cluster) CompactAll(keepLast uint64) {
	for _, n := range c.nodes {
		n.CompactLog(keepLast)
	}
}

// LogStats summarizes the live Raft log footprint across a cluster's
// running nodes — the observable the compaction policy is meant to bound.
type LogStats struct {
	// MaxEntries / MaxBytes are the largest per-node live log (worst
	// replica), TotalBytes the sum over live replicas.
	MaxEntries int
	MaxBytes   uint64
	TotalBytes uint64
	// MinFirstIndex is the lowest compaction floor across live replicas
	// (0 when no node has compacted yet).
	MinFirstIndex uint64
}

// LogStatsNow samples the live log footprint, skipping paused/crashed
// nodes (their volatile log is not memory the deployment is holding).
func (c *Cluster) LogStatsNow() LogStats {
	var ls LogStats
	first := true
	for i, n := range c.nodes {
		if c.rts[i].paused {
			continue
		}
		e, b, fi := n.LogEntries(), n.LogBytes(), n.FirstIndex()
		if e > ls.MaxEntries {
			ls.MaxEntries = e
		}
		if b > ls.MaxBytes {
			ls.MaxBytes = b
		}
		ls.TotalBytes += b
		if first || fi < ls.MinFirstIndex {
			ls.MinFirstIndex = fi
			first = false
		}
	}
	return ls
}

// StoresConsistent verifies that every pair of stores agrees on the
// committed prefix (they may differ in length, not content). It returns
// an error describing the first divergence.
func (c *Cluster) StoresConsistent() error {
	// Compare applied indexes and data at the minimum applied point by
	// replay comparison: since Apply is deterministic and logs match (raft
	// safety), equality of stores with equal applied index is the check.
	for i := 0; i < len(c.stores); i++ {
		for j := i + 1; j < len(c.stores); j++ {
			a, b := c.stores[i], c.stores[j]
			if a.AppliedIndex() == b.AppliedIndex() && !a.Equal(b) {
				return fmt.Errorf("stores %d and %d diverged at applied index %d", i+1, j+1, a.AppliedIndex())
			}
		}
	}
	return nil
}

// OTS returns the out-of-service intervals observed in [from, to).
func (c *Cluster) OTS(from, to time.Duration) *metrics.Intervals {
	return c.rec.OTSIntervals(from, to)
}
