package cluster

import (
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/geo"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func stableNet(rtt int) netsim.Profile {
	return netsim.Constant(netsim.Params{RTT: ms(rtt), Jitter: 2 * time.Millisecond})
}

func TestClusterElectsLeader(t *testing.T) {
	c := New(Options{N: 5, Seed: 1, Variant: VariantRaft(), Profile: stableNet(100)})
	c.Start()
	if c.WaitLeader(10*time.Second) == nil {
		t.Fatal("no leader")
	}
}

func TestAllVariantsElectLeaders(t *testing.T) {
	variants := []Variant{VariantRaft(), VariantRaftLow(), VariantDynatune(dynatune.Options{}), VariantFixK(10)}
	for _, v := range variants {
		c := New(Options{N: 5, Seed: 2, Variant: v, Profile: stableNet(50)})
		c.Start()
		if c.WaitLeader(10*time.Second) == nil {
			t.Fatalf("%s: no leader", v.Name)
		}
	}
}

func TestDynatuneEngagesAfterWarmup(t *testing.T) {
	c := New(Options{N: 5, Seed: 3, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	// Warmup: minListSize=10 heartbeats at ≤100ms intervals (the fallback h).
	c.Run(5 * time.Second)
	tunedFollowers := 0
	for id := raft.ID(1); id <= 5; id++ {
		if id == lead.ID() {
			continue
		}
		tn := c.DynatuneTuner(id)
		if tn == nil {
			t.Fatalf("node %d has no dynatune tuner", id)
		}
		if tn.Tuned() {
			tunedFollowers++
			et := tn.TunedEt()
			// RTT 100ms with small jitter: Et = µ+2σ should land near
			// 100-130ms, radically below the 1000ms default.
			if et < ms(90) || et > ms(200) {
				t.Fatalf("node %d tuned Et = %v, want ≈100-130ms", id, et)
			}
		}
	}
	if tunedFollowers < 4 {
		t.Fatalf("only %d/4 followers engaged tuning", tunedFollowers)
	}
	// Leader side must have adopted the piggybacked per-peer h ≈ Et (K=1
	// at zero loss).
	if h := c.LeaderMeanHeartbeatInterval(); h < ms(90) || h > ms(250) {
		t.Fatalf("leader mean h = %v, want ≈Et", h)
	}
}

func TestDynatuneDetectsFasterThanRaft(t *testing.T) {
	// The headline claim (Fig. 4) in miniature: 20 failures each.
	detect := func(v Variant) float64 {
		res := RunElectionTrials(Options{N: 5, Seed: 11, Variant: v, Profile: stableNet(100)}, 20, 4*time.Second)
		if len(res.DetectionMs) < 15 {
			t.Fatalf("%s: only %d/%d detections", v.Name, len(res.DetectionMs), res.Trials)
		}
		d, _ := res.Summary()
		return d.Mean
	}
	raftDet := detect(VariantRaft())
	dynDet := detect(VariantDynatune(dynatune.Options{}))
	if dynDet >= raftDet {
		t.Fatalf("dynatune detection %.0fms not faster than raft %.0fms", dynDet, raftDet)
	}
	// Paper: 80% reduction. Accept anything beyond 50% for the miniature.
	if dynDet > raftDet*0.5 {
		t.Fatalf("dynatune detection %.0fms, want < half of raft %.0fms", dynDet, raftDet)
	}
	// Raft's detection should sit near the min of 4 randomized timeouts
	// (≈1200ms for Et=1000).
	if raftDet < 800 || raftDet > 1800 {
		t.Fatalf("raft mean detection %.0fms outside plausible band", raftDet)
	}
}

func TestDynatuneReducesOTS(t *testing.T) {
	ots := func(v Variant) float64 {
		res := RunElectionTrials(Options{N: 5, Seed: 13, Variant: v, Profile: stableNet(100)}, 20, 4*time.Second)
		if len(res.OTSMs) < 15 {
			t.Fatalf("%s: only %d OTS samples", v.Name, len(res.OTSMs))
		}
		_, o := res.Summary()
		return o.Mean
	}
	raftOTS := ots(VariantRaft())
	dynOTS := ots(VariantDynatune(dynatune.Options{}))
	if dynOTS >= raftOTS {
		t.Fatalf("dynatune OTS %.0fms not below raft %.0fms", dynOTS, raftOTS)
	}
}

func TestPauseFreezesNode(t *testing.T) {
	c := New(Options{N: 3, Seed: 5, Variant: VariantRaft(), Profile: stableNet(20)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	id, _ := c.PauseLeader()
	if id != lead.ID() {
		t.Fatalf("paused %d, leader was %d", id, lead.ID())
	}
	if !c.Paused(id) {
		t.Fatal("Paused() false")
	}
	sent := c.MessagesSent(id)
	c.Run(3 * time.Second)
	if c.MessagesSent(id) != sent {
		t.Fatal("paused node kept sending")
	}
	// A new leader emerges among survivors.
	newLead := c.Leader()
	if newLead == nil || newLead.ID() == id {
		t.Fatal("no replacement leader")
	}
	// Resume: the stale leader rejoins as follower.
	c.Resume(id)
	c.Run(5 * time.Second)
	if c.Node(id).State() == raft.StateLeader && c.Node(id).Term() <= newLead.Term() {
		t.Fatal("stale leader did not step down")
	}
}

func TestStoresStayConsistent(t *testing.T) {
	c := New(Options{N: 3, Seed: 7, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(30)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	lg := NewLoadGen(c, paperMiniRamp(), ms(60))
	_ = lg
	for i := 0; i < 50; i++ {
		if _, err := lead.Propose(proposeCmd(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(3 * time.Second)
	if err := c.StoresConsistent(); err != nil {
		t.Fatal(err)
	}
	if c.Store(1).AppliedIndex() == 0 {
		t.Fatal("nothing applied")
	}
}

func TestKthSmallestRandomizedTimeout(t *testing.T) {
	c := New(Options{N: 5, Seed: 9, Variant: VariantRaft(), Profile: stableNet(50)})
	c.Start()
	c.WaitLeader(10 * time.Second)
	k1 := c.KthSmallestRandomizedTimeout(1)
	k3 := c.KthSmallestRandomizedTimeout(3)
	k5 := c.KthSmallestRandomizedTimeout(5)
	if !(k1 <= k3 && k3 <= k5) {
		t.Fatalf("order statistics wrong: %v %v %v", k1, k3, k5)
	}
	if k1 < time.Second || k5 >= 2*time.Second {
		t.Fatalf("randomized timeouts outside [Et,2Et): %v..%v", k1, k5)
	}
	// Out-of-range k clamps.
	if c.KthSmallestRandomizedTimeout(0) != k1 || c.KthSmallestRandomizedTimeout(99) != k5 {
		t.Fatal("k clamping broken")
	}
}

func TestCPUPercentReflectsLoad(t *testing.T) {
	c := New(Options{N: 5, Seed: 15, Variant: VariantFixK(10), Profile: stableNet(200)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	c.Run(10 * time.Second) // engage tuning: h = Et/10 ≈ 21ms
	c.CPUPercent(lead.ID(), time.Second)
	c.Run(5 * time.Second)
	leadCPU := c.CPUPercent(lead.ID(), 5*time.Second)
	var followerID raft.ID = 1
	if lead.ID() == 1 {
		followerID = 2
	}
	folCPU := c.CPUPercent(followerID, 5*time.Second)
	if leadCPU <= folCPU {
		t.Fatalf("leader CPU %.1f%% not above follower %.1f%%", leadCPU, folCPU)
	}
	if leadCPU <= 0 || leadCPU > 200 {
		t.Fatalf("leader CPU %.1f%% out of range", leadCPU)
	}
}

func TestGeoClusterElects(t *testing.T) {
	c := New(Options{
		N: 5, Seed: 17,
		Variant:       VariantDynatune(dynatune.Options{}),
		Regions:       geo.Regions,
		GeoJitterFrac: 0.05,
		GeoLoss:       0.001,
	})
	c.Start()
	if c.WaitLeader(15*time.Second) == nil {
		t.Fatal("geo cluster elected no leader")
	}
	// Per-link RTTs must differ (asymmetric topology).
	if c.LinkRTT(1, 2) == c.LinkRTT(1, 3) {
		t.Fatal("geo links not applied")
	}
}

func TestGeoPerPairTuning(t *testing.T) {
	// The whole point of per-pair tuning: different followers get
	// different heartbeat intervals under the geo matrix.
	c := New(Options{
		N: 5, Seed: 19,
		Variant:       VariantDynatune(dynatune.Options{}),
		Regions:       geo.Regions,
		GeoJitterFrac: 0.03,
	})
	c.Start()
	lead := c.WaitLeader(15 * time.Second)
	c.Run(20 * time.Second)
	tn := c.DynatuneTuner(lead.ID())
	ivs := tn.LeaderIntervals()
	if len(ivs) < 2 {
		t.Fatalf("leader tuned %d pairs, want ≥2", len(ivs))
	}
	var lo, hi time.Duration
	for _, h := range ivs {
		if lo == 0 || h < lo {
			lo = h
		}
		if h > hi {
			hi = h
		}
	}
	if hi < lo*3/2 {
		t.Fatalf("per-pair intervals too uniform over geo links: %v .. %v", lo, hi)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 5 || o.Seed != 1 || o.Variant.Name != "Raft" || o.Cost.Cores != 2 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestMismatchedRegionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{N: 3, Regions: geo.Regions})
}

func TestSnapshotCatchUpThroughKVStore(t *testing.T) {
	c := New(Options{N: 3, Seed: 57, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(30)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	var follower raft.ID
	for id := raft.ID(1); id <= 3; id++ {
		if id != lead.ID() {
			follower = id
			break
		}
	}
	c.Pause(follower)
	for i := 0; i < 100; i++ {
		if _, err := lead.Propose(proposeCmd(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	lead.CompactLog(2) // deep compaction: snapshots configured, so allowed
	if lead.Log().FirstIndex() < 50 {
		t.Fatalf("compaction too shallow: %d", lead.Log().FirstIndex())
	}
	c.Resume(follower)
	c.Run(5 * time.Second)
	// The follower's kv store must equal the leader's (transferred via
	// snapshot + tail replication).
	if !c.Store(follower).Equal(c.Store(lead.ID())) {
		t.Fatal("kv stores differ after snapshot catch-up")
	}
	if c.Store(follower).AppliedIndex() != c.Store(lead.ID()).AppliedIndex() {
		t.Fatalf("applied %d vs %d", c.Store(follower).AppliedIndex(), c.Store(lead.ID()).AppliedIndex())
	}
}

// TestLeaderMeanHeartbeatIntervalNoLeader pins the accessor's documented
// zero: polled with no elected leader — before any election, and again
// with every replica paused (a retired shard group sampled mid-tick) —
// it must return 0 rather than touch nil runtime state.
func TestLeaderMeanHeartbeatIntervalNoLeader(t *testing.T) {
	c := New(Options{N: 3, Seed: 21, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(50)})
	c.Start()
	if h := c.LeaderMeanHeartbeatInterval(); h != 0 {
		t.Fatalf("pre-election mean h = %v, want documented 0", h)
	}
	if c.WaitLeader(30*time.Second) == nil {
		t.Fatal("no leader")
	}
	c.Run(2 * time.Second)
	if h := c.LeaderMeanHeartbeatInterval(); h == 0 {
		t.Fatal("steady-state mean h = 0 with an elected leader")
	}
	for id := raft.ID(1); id <= 3; id++ {
		c.Pause(id)
	}
	if h := c.LeaderMeanHeartbeatInterval(); h != 0 {
		t.Fatalf("all-paused mean h = %v, want documented 0", h)
	}
}
