// Package chaos is the storm-mode fault-schedule search: a seeded
// generator samples timed fault schedules from a declarative budget,
// compiles each sample into a scenario.Spec, runs it on the sharded
// testbed with the standing invariant suite armed, and — on an invariant
// trip — delta-debugs the schedule down to a minimal reproducer that
// still fails, persisting it as a JSON spec loadable by
// `dynabench scenario -file`. Everything downstream of a (budget, seed)
// pair is deterministic: the schedule, the run verdicts, and the shrunk
// reproducer are byte-identical for any worker count.
package chaos

import (
	"fmt"
	"time"

	"dynatune/internal/scenario"
)

// Budget declares the sampling space of one storm campaign: the fixed
// topology and workload every storm shares, and the fault-schedule
// distribution the generator draws from.
type Budget struct {
	// Topology of every storm (defaults: 2 groups × 3 nodes, persisted
	// stores so crash faults are in the kind pool).
	Groups        int    `json:"groups,omitempty"`
	NodesPerGroup int    `json:"nodes_per_group,omitempty"`
	Variant       string `json:"variant,omitempty"`
	Persist       bool   `json:"persist,omitempty"`
	// Snapshot policy every group runs under (zero = unbounded logs):
	// storms then cover the compaction×chaos seam — a crashed replica
	// whose log the leader compacted away must catch up via streamed
	// snapshot with the whole invariant suite watching.
	SnapshotEvery  uint64 `json:"snapshot_every_entries,omitempty"`
	SnapshotRetain uint64 `json:"snapshot_retain,omitempty"`
	SnapshotChunk  int    `json:"snapshot_chunk,omitempty"`

	// Workload ramp driven under every storm.
	RPS          int               `json:"rps,omitempty"`
	StepRPS      int               `json:"step_rps,omitempty"`
	Steps        int               `json:"steps,omitempty"`
	StepDuration scenario.Duration `json:"step_duration,omitempty"`
	Keys         int               `json:"keys,omitempty"`

	// MinFaults..MaxFaults bounds the schedule length (inclusive).
	MinFaults int `json:"min_faults,omitempty"`
	MaxFaults int `json:"max_faults,omitempty"`

	// Kinds weights the fault kinds the generator samples. Zero or missing
	// weight removes a kind; an empty map means the default pool. Allowed
	// keys: pause-node, crash-node, partition-node (all group-addressed),
	// link-down, partition-groups, degrade-links.
	Kinds map[string]float64 `json:"kinds,omitempty"`

	// WindowFrac is the fraction of the ramp in which faults may fire
	// (default 0.7: the tail stays clear so heals land inside the run).
	WindowFrac float64 `json:"window_frac,omitempty"`
	// MinDur..MaxDur bounds each fault's injected duration.
	MinDur scenario.Duration `json:"min_dur,omitempty"`
	MaxDur scenario.Duration `json:"max_dur,omitempty"`

	// Rebalance is the probability a storm includes a live rebalance move
	// (add-group, or remove-group when the topology has groups to spare);
	// when one is included, half the faults are re-aimed to overlap its
	// migration window.
	Rebalance float64 `json:"rebalance,omitempty"`
	// Reorder is the probability a degrade-links fault carries correlated
	// reordering bursts.
	Reorder float64 `json:"reorder,omitempty"`

	// Invariants configures the standing suite (nil means suite defaults).
	Invariants *scenario.Invariants `json:"invariants,omitempty"`
}

// DefaultBudget is the stock storm campaign: a small persisted two-group
// deployment under a modest ramp, all fault kinds in play, frequent
// rebalance overlap.
func DefaultBudget() Budget {
	return Budget{
		Groups:         2,
		NodesPerGroup:  3,
		Variant:        "dynatune",
		Persist:        true,
		SnapshotEvery:  256,
		SnapshotRetain: 32,
		SnapshotChunk:  4096,
		RPS:            100,
		StepRPS:        20,
		Steps:          4,
		StepDuration:   scenario.Duration(2 * time.Second),
		Keys:           512,
		MinFaults:      2,
		MaxFaults:      5,
		WindowFrac:     0.7,
		MinDur:         scenario.Duration(500 * time.Millisecond),
		MaxDur:         scenario.Duration(2500 * time.Millisecond),
		Rebalance:      0.5,
		Reorder:        0.5,
	}
}

// kindPool is the generator's default kind pool with weights; order is
// fixed (never map iteration) so sampling is deterministic.
var kindPool = []struct {
	kind   scenario.FaultKind
	weight float64
}{
	{scenario.FaultPauseNode, 3},
	{scenario.FaultCrashNode, 2},
	{scenario.FaultPartitionNode, 2},
	{scenario.FaultLinkDown, 2},
	{scenario.FaultPartitionGroups, 1},
	{scenario.FaultDegradeLinks, 2},
}

// withDefaults fills the zero fields from DefaultBudget.
func (b Budget) withDefaults() Budget {
	d := DefaultBudget()
	if b.Groups == 0 {
		b.Groups = d.Groups
	}
	if b.NodesPerGroup == 0 {
		b.NodesPerGroup = d.NodesPerGroup
	}
	if b.Variant == "" {
		b.Variant = d.Variant
	}
	if b.RPS == 0 {
		b.RPS = d.RPS
	}
	if b.Steps == 0 {
		b.Steps = d.Steps
	}
	if b.StepDuration == 0 {
		b.StepDuration = d.StepDuration
	}
	if b.Keys == 0 {
		b.Keys = d.Keys
	}
	if b.MinFaults == 0 && b.MaxFaults == 0 {
		b.MinFaults, b.MaxFaults = d.MinFaults, d.MaxFaults
	}
	if b.WindowFrac == 0 {
		b.WindowFrac = d.WindowFrac
	}
	if b.MinDur == 0 {
		b.MinDur = d.MinDur
	}
	if b.MaxDur == 0 {
		b.MaxDur = d.MaxDur
	}
	return b
}

// Validate rejects budgets the generator cannot sample coherently.
func (b Budget) Validate() error {
	b = b.withDefaults()
	if b.Groups < 1 || b.NodesPerGroup < 3 {
		return fmt.Errorf("chaos: budget needs >= 1 group of >= 3 nodes, got %d x %d", b.Groups, b.NodesPerGroup)
	}
	if b.MinFaults < 0 || b.MaxFaults < b.MinFaults {
		return fmt.Errorf("chaos: fault count bounds [%d,%d] are not a range", b.MinFaults, b.MaxFaults)
	}
	if b.WindowFrac <= 0 || b.WindowFrac > 1 {
		return fmt.Errorf("chaos: window_frac %v must be in (0,1]", b.WindowFrac)
	}
	if b.MinDur <= 0 || b.MaxDur < b.MinDur {
		return fmt.Errorf("chaos: duration bounds [%v,%v] are not a range", b.MinDur.D(), b.MaxDur.D())
	}
	if b.Rebalance < 0 || b.Rebalance > 1 || b.Reorder < 0 || b.Reorder > 1 {
		return fmt.Errorf("chaos: rebalance/reorder are probabilities in [0,1]")
	}
	for k, w := range b.Kinds {
		if w < 0 {
			return fmt.Errorf("chaos: kind %q has negative weight %v", k, w)
		}
		known := false
		for _, p := range kindPool {
			if string(p.kind) == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("chaos: kind %q is not in the storm pool", k)
		}
	}
	if !b.Persist && b.weightOf(scenario.FaultCrashNode) > 0 && b.Kinds != nil {
		return fmt.Errorf("chaos: crash-node faults need persist: true (restart replays the durable store)")
	}
	return nil
}

// weightOf returns the sampling weight for one kind: the budget's
// override when Kinds is set, the stock pool weight otherwise. Crash
// faults silently drop out of the default pool on non-persisted budgets
// (there is nothing to restart from).
func (b Budget) weightOf(k scenario.FaultKind) float64 {
	if k == scenario.FaultCrashNode && !b.Persist {
		if b.Kinds == nil {
			return 0
		}
	}
	if b.Kinds != nil {
		return b.Kinds[string(k)]
	}
	for _, p := range kindPool {
		if p.kind == k {
			return p.weight
		}
	}
	return 0
}
