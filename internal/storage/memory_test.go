package storage

import (
	"bytes"
	"fmt"
	"testing"

	"dynatune/internal/raft"
)

func entry(term, index uint64, data string) raft.Entry {
	return raft.Entry{Term: term, Index: index, Data: []byte(data)}
}

func TestMemoryFreshIsNil(t *testing.T) {
	m := NewMemory()
	if r := m.Restored(); r != nil {
		t.Fatalf("fresh Memory restored %+v, want nil", r)
	}
}

func TestMemoryHardStateRoundtrip(t *testing.T) {
	m := NewMemory()
	hs := raft.HardState{Term: 7, Vote: 3}
	if err := m.SaveHardState(hs); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if r == nil || r.HardState != hs {
		t.Fatalf("restored %+v, want hard state %+v", r, hs)
	}
}

func TestMemoryAppendAndRestore(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a"), entry(1, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEntries([]raft.Entry{entry(2, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if len(r.Entries) != 3 {
		t.Fatalf("restored %d entries, want 3", len(r.Entries))
	}
	if string(r.Entries[2].Data) != "c" || r.Entries[2].Term != 2 {
		t.Fatalf("entry 3 = %+v", r.Entries[2])
	}
}

func TestMemoryAppendGapFails(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEntries([]raft.Entry{entry(1, 5, "gap")}); err == nil {
		t.Fatal("appending with an index gap should fail")
	}
}

func TestMemoryTruncateThenReappend(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a"), entry(1, 2, "b"), entry(1, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	if err := m.TruncateFrom(2); err != nil {
		t.Fatal(err)
	}
	if got := m.LastIndex(); got != 1 {
		t.Fatalf("last index after truncate = %d, want 1", got)
	}
	if err := m.AppendEntries([]raft.Entry{entry(2, 2, "b2")}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if len(r.Entries) != 2 || string(r.Entries[1].Data) != "b2" || r.Entries[1].Term != 2 {
		t.Fatalf("restored entries %+v", r.Entries)
	}
}

func TestMemoryOverwriteTruncatesSuffix(t *testing.T) {
	// An append at an existing index replaces it and drops everything
	// above — the conflicting-suffix rule replay depends on.
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a"), entry(1, 2, "b"), entry(1, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEntries([]raft.Entry{entry(3, 2, "B")}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if len(r.Entries) != 2 {
		t.Fatalf("restored %d entries, want 2 (suffix dropped)", len(r.Entries))
	}
	if string(r.Entries[1].Data) != "B" {
		t.Fatalf("entry 2 = %q, want B", r.Entries[1].Data)
	}
}

func TestMemorySnapshotDropsCoveredEntries(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a"), entry(1, 2, "b"), entry(1, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshot(raft.Snapshot{Index: 2, Term: 1, Data: []byte("snap")}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if r.Snapshot == nil || r.Snapshot.Index != 2 {
		t.Fatalf("restored snapshot %+v", r.Snapshot)
	}
	if len(r.Entries) != 1 || r.Entries[0].Index != 3 {
		t.Fatalf("restored suffix %+v, want only index 3", r.Entries)
	}
	if err := m.AppendEntries([]raft.Entry{entry(1, 4, "d")}); err != nil {
		t.Fatal(err)
	}
	if got := m.LastIndex(); got != 4 {
		t.Fatalf("last index = %d, want 4", got)
	}
}

func TestMemorySnapshotBeyondTailClearsEntries(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshot(raft.Snapshot{Index: 10, Term: 4, Data: nil}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	if len(r.Entries) != 0 {
		t.Fatalf("entries %+v, want none", r.Entries)
	}
	// The next append must continue above the snapshot floor.
	if err := m.AppendEntries([]raft.Entry{entry(4, 11, "k")}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendEntries([]raft.Entry{entry(4, 2, "stale")}); err != nil {
		t.Fatal(err) // below the floor: silently skipped, not an error
	}
	if got := m.LastIndex(); got != 11 {
		t.Fatalf("last index = %d, want 11", got)
	}
}

func TestMemoryRestoredIsACopy(t *testing.T) {
	m := NewMemory()
	if err := m.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	r := m.Restored()
	r.Entries[0].Data[0] = 'X'
	r2 := m.Restored()
	if !bytes.Equal(r2.Entries[0].Data, []byte("a")) {
		t.Fatal("Restored shares backing arrays with the store")
	}
}

func TestMemoryCounters(t *testing.T) {
	m := NewMemory()
	_ = m.SaveHardState(raft.HardState{Term: 1})
	_ = m.AppendEntries([]raft.Entry{entry(1, 1, "a")})
	_ = m.TruncateFrom(1)
	_ = m.SaveSnapshot(raft.Snapshot{Index: 0, Term: 0})
	s, a, tr, sn := m.Counters()
	if s != 1 || a != 1 || tr != 1 || sn != 1 {
		t.Fatalf("counters = %d %d %d %d, want all 1", s, a, tr, sn)
	}
}

// TestMemoryEquivalentToWAL drives the same random-ish operation sequence
// through Memory and a NoSync WAL and requires identical recovery — the
// two persisters must never diverge semantically.
func TestMemoryEquivalentToWAL(t *testing.T) {
	mem := NewMemory()
	wal, restored, err := Open(t.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if restored != nil {
		t.Fatal("fresh WAL restored non-nil")
	}
	both := func(f func(p raft.Persister) error) {
		t.Helper()
		if err := f(mem); err != nil {
			t.Fatal(err)
		}
		if err := f(wal); err != nil {
			t.Fatal(err)
		}
	}
	idx := uint64(0)
	for round := 0; round < 50; round++ {
		switch round % 5 {
		case 0:
			term := uint64(round/5 + 1)
			both(func(p raft.Persister) error {
				return p.SaveHardState(raft.HardState{Term: term, Vote: raft.ID(round % 3)})
			})
		case 1, 2:
			var batch []raft.Entry
			for j := 0; j < 3; j++ {
				idx++
				batch = append(batch, entry(uint64(round/5+1), idx, fmt.Sprintf("v%d", idx)))
			}
			both(func(p raft.Persister) error { return p.AppendEntries(batch) })
		case 3:
			if idx > 2 {
				idx -= 2
				cut := idx + 1
				both(func(p raft.Persister) error { return p.TruncateFrom(cut) })
			}
		case 4:
			if round%10 == 9 && idx > 0 {
				snapIdx := idx - 1
				both(func(p raft.Persister) error {
					return p.SaveSnapshot(raft.Snapshot{Index: snapIdx, Term: 1, Data: []byte("s")})
				})
			}
		}
	}
	a, b := mem.Restored(), wal.Restored()
	if err := restoredEqual(a, b); err != nil {
		t.Fatalf("Memory and WAL diverged: %v", err)
	}
}

func restoredEqual(a, b *raft.Restored) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("nil mismatch: %v vs %v", a == nil, b == nil)
	}
	if a == nil {
		return nil
	}
	if a.HardState != b.HardState {
		return fmt.Errorf("hard state %+v vs %+v", a.HardState, b.HardState)
	}
	if (a.Snapshot == nil) != (b.Snapshot == nil) {
		return fmt.Errorf("snapshot presence mismatch")
	}
	if a.Snapshot != nil {
		if a.Snapshot.Index != b.Snapshot.Index || a.Snapshot.Term != b.Snapshot.Term || !bytes.Equal(a.Snapshot.Data, b.Snapshot.Data) {
			return fmt.Errorf("snapshot %+v vs %+v", a.Snapshot, b.Snapshot)
		}
	}
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("entry count %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		if x.Term != y.Term || x.Index != y.Index || x.Type != y.Type || !bytes.Equal(x.Data, y.Data) {
			return fmt.Errorf("entry %d: %+v vs %+v", i, x, y)
		}
	}
	return nil
}
