package scenario

import (
	"sort"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/workload"
)

// The registry of named scenarios: the paper's figures as declarative
// specs, plus the scenarios the engine makes cheap that the bespoke
// trial loops never covered. `dynabench scenario -list` prints this
// table; `dynabench scenario <name>` runs an entry through scenario/bind.

// registry maps name → spec. Populated at init; effectively immutable
// afterwards (Lookup returns copies of the value type).
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate registration of " + s.Name)
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	registry[s.Name] = s
}

// Names lists the registered scenarios in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a deep copy of the named spec, so callers can override
// trial counts, seeds or workload knobs without mutating the registry.
func Lookup(name string) (Spec, bool) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, false
	}
	return s.Clone(), true
}

// Clone deep-copies the spec's pointer/slice sections, so a caller can
// derive variations (grid cells, per-rep seeds) without aliasing the
// original's schedule or workload. The sweep engine clones once per cell
// and once per repetition.
func (s Spec) Clone() Spec {
	out := s
	if s.Topology.Regions != nil {
		out.Topology.Regions = append([]string(nil), s.Topology.Regions...)
	}
	if s.Network.Segments != nil {
		out.Network.Segments = append([]Segment(nil), s.Network.Segments...)
	}
	if s.Faults != nil {
		out.Faults = append([]Fault(nil), s.Faults...)
		for i := range out.Faults {
			out.Faults[i].GroupA = append([]int(nil), out.Faults[i].GroupA...)
			out.Faults[i].GroupB = append([]int(nil), out.Faults[i].GroupB...)
		}
	}
	if s.Workload != nil {
		w := *s.Workload
		out.Workload = &w
	}
	if s.Reads != nil {
		r := *s.Reads
		out.Reads = &r
	}
	if s.Membership != nil {
		m := *s.Membership
		out.Membership = &m
	}
	if s.Invariants != nil {
		inv := *s.Invariants
		out.Invariants = &inv
	}
	return out
}

func init() {
	dynatune := VariantSpec{Name: "dynatune"}
	raftV := VariantSpec{Name: "raft"}
	n5 := Topology{N: 5}

	// --- The paper's figures as named specs ---

	register(Spec{
		Name:        "paper-elections",
		Description: "Fig. 4: leader-pause failovers on the stable 100ms network (Dynatune)",
		Measure:     MeasureFailover,
		Topology:    n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{{Kind: FaultPauseLeader}},
		Trials: 1000, Seed: 42, Settle: Duration(4 * time.Second),
	})
	register(Spec{
		Name:        "paper-elections-raft",
		Description: "Fig. 4 baseline: the same failovers under stock etcd timeouts",
		Measure:     MeasureFailover,
		Topology:    n5, Network: Stable(100 * time.Millisecond), Variant: raftV,
		Faults: []Fault{{Kind: FaultPauseLeader}},
		Trials: 1000, Seed: 42, Settle: Duration(4 * time.Second),
	})
	register(Spec{
		Name:        "paper-geo-elections",
		Description: "Fig. 8: failovers across the five-region WAN matrix (Dynatune)",
		Measure:     MeasureFailover,
		Topology: Topology{N: 5,
			Regions:       []string{"tokyo", "london", "california", "sydney", "sao-paulo"},
			GeoJitterFrac: 0.05, GeoLoss: 0.001},
		Variant: dynatune,
		Faults:  []Fault{{Kind: FaultPauseLeader}},
		Trials:  1000, Seed: 11, Settle: Duration(5 * time.Second),
	})
	paperRamp := workload.PaperRamp(18000)
	paperRamp.Poisson = true
	register(Spec{
		Name:        "paper-throughput",
		Description: "Fig. 5: open-loop Poisson RPS ramp to 18k req/s without failures (Raft)",
		Measure:     MeasureThroughput,
		Topology:    n5, Network: Stable(100 * time.Millisecond), Variant: raftV,
		Workload: WorkloadFrom(paperRamp, 0),
		Reps:     10, Seed: 21,
	})
	register(Spec{
		Name:        "paper-rtt-gradual",
		Description: "Fig. 6a: gradual RTT ramp 50→200→50ms, 1 min holds (Dynatune)",
		Measure:     MeasureSeries,
		Topology:    n5,
		Network: NetFrom(netsim.GradualRTTRamp(netsim.Params{Jitter: 2 * time.Millisecond},
			50*time.Millisecond, 200*time.Millisecond, 10*time.Millisecond, time.Minute)),
		Variant: dynatune,
		Seed:    7, Horizon: Duration(31 * time.Minute), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name:        "paper-loss-sweep",
		Description: "Fig. 7: loss sweep 0→30→0% at RTT 200ms, 3 min holds (Dynatune)",
		Measure:     MeasureSeries,
		Topology:    n5,
		Network: NetFrom(netsim.LossSweep(netsim.Params{RTT: 200 * time.Millisecond,
			Jitter: 2 * time.Millisecond}, 3*time.Minute)),
		Variant: dynatune,
		Seed:    3, Horizon: Duration(39 * time.Minute), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name:        "crash-recovery",
		Description: "§III-A crash-recovery class: leader dies, recovers from its durable store, re-warms its tuner",
		Measure:     MeasureFailover,
		Topology:    Topology{N: 5, Persist: true}, Network: Stable(100 * time.Millisecond),
		Variant: dynatune,
		Faults:  []Fault{{Kind: FaultCrashLeader}},
		Trials:  300, Seed: 61, Settle: Duration(4 * time.Second), Downtime: Duration(500 * time.Millisecond),
	})
	register(Spec{
		Name:        "planned-handover",
		Description: "Planned maintenance: leadership transfer instead of a crash — handover ≈1.5 RTT",
		Measure:     MeasureFailover,
		Topology:    n5, Network: Stable(100 * time.Millisecond), Variant: raftV,
		Faults: []Fault{{Kind: FaultTransferLeader}},
		Trials: 300, Seed: 62, Settle: Duration(4 * time.Second),
	})
	register(Spec{
		Name:        "read-latency-lease",
		Description: "Linearizable lease reads vs the tuned election timeout (Dynatune)",
		Measure:     MeasureReads,
		Topology:    n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Seed:  77,
		Reads: &ReadProbe{Reads: 1000, Every: Duration(25 * time.Millisecond), Mode: "lease"},
	})
	register(Spec{
		Name:        "membership-growth",
		Description: "Add-learner → catch-up → promote → failover while the joiner's tuner is cold (Dynatune)",
		Measure:     MeasureMembership,
		Topology:    Topology{N: 5, InitialMembers: 4}, Network: Stable(100 * time.Millisecond),
		Variant: dynatune,
		Seed:    91, Membership: &MembershipProbe{Preload: 500},
	})

	// --- Beyond the paper: scenarios the declarative engine makes cheap ---

	register(Spec{
		Name: "cascading-leader-failures",
		Description: "Two successive leaders freeze with overlapping outages; the surviving " +
			"3/5 quorum must elect twice while the cascade deepens",
		Measure:  MeasureSeries,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{
			{Kind: FaultPauseLeader, At: Duration(10 * time.Second), Duration: Duration(40 * time.Second)},
			{Kind: FaultPauseLeader, At: Duration(15 * time.Second), Duration: Duration(35 * time.Second)},
		},
		Seed: 101, Horizon: Duration(60 * time.Second), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name: "asym-partition-abdication",
		Description: "Asymmetric partition: the leader goes deaf but keeps heartbeating, so " +
			"followers stay quiet until check-quorum forces abdication — the stale-leader " +
			"path pause trials never exercise",
		Measure:  MeasureFailover,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{{Kind: FaultAsymPartitionLeader}},
		Trials: 200, Seed: 103, Settle: Duration(4 * time.Second),
	})
	register(Spec{
		Name: "rolling-restart-under-load",
		Description: "A rolling restart sweeps all five durable nodes (leader included) while " +
			"the open-loop workload keeps arriving; measures throughput dips and lost proposals",
		Measure:  MeasureThroughput,
		Topology: Topology{N: 5, Persist: true}, Network: Stable(50 * time.Millisecond),
		Variant: dynatune,
		Workload: &Workload{StartRPS: 1500, StepRPS: 0,
			StepDuration: Duration(2 * time.Second), Steps: 14},
		Faults: []Fault{{Kind: FaultRollingRestart, At: Duration(3 * time.Second),
			Every: Duration(5 * time.Second), Count: 5, Duration: Duration(1500 * time.Millisecond)}},
		Reps: 1, Seed: 107,
	})
	register(Spec{
		Name: "wan-flap-ramp",
		Description: "Sharded throughput ramp while the shared WAN flaps 80↔240ms every 15s " +
			"(netem queue flushed at each flap), 4 Raft groups of 3",
		Measure:  MeasureThroughput,
		Topology: Topology{N: 3, Groups: 4, NodesPerGroup: 3},
		Network: NetFrom(netsim.RTTSteps(netsim.Params{Jitter: 2 * time.Millisecond}, 15*time.Second,
			80*time.Millisecond, 240*time.Millisecond, 80*time.Millisecond,
			240*time.Millisecond, 80*time.Millisecond, 240*time.Millisecond)),
		Variant: dynatune,
		Workload: &Workload{StartRPS: 2000, StepRPS: 2000,
			StepDuration: Duration(10 * time.Second), Steps: 4, Keys: 4096},
		Reps: 1, Seed: 109,
	})
	register(Spec{
		Name: "loss-pulse-degrade",
		Description: "All links degrade to 25% loss in two 8s pulses; the tuner must measure " +
			"the loss, shrink h, and restore it after each pulse without an election",
		Measure:  MeasureSeries,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{{Kind: FaultDegradeLinks, At: Duration(10 * time.Second),
			Every: Duration(25 * time.Second), Count: 2, Duration: Duration(8 * time.Second),
			RTT: Duration(100 * time.Millisecond), Jitter: Duration(2 * time.Millisecond), Loss: 0.25}},
		Seed: 113, Horizon: Duration(60 * time.Second), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name: "clock-skew-follower",
		Description: "One follower's clock runs 20x fast for 30s (NTP error, §IV-D caveat): its " +
			"election timer fires below the heartbeat interval, but pre-vote + leader " +
			"stickiness must absorb the premature campaigns without an election",
		Measure:  MeasureSeries,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: raftV,
		// Node 3 is a follower for this seed (node 2 wins the first
		// election); skewing the leader instead would skew its check-quorum
		// sweep and abdicate it — a different, far louder failure.
		Faults: []Fault{{Kind: FaultClockSkew, Node: 3, At: Duration(10 * time.Second),
			Duration: Duration(30 * time.Second), Drift: -0.95}},
		Seed: 127, Horizon: Duration(60 * time.Second), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name: "scale-out-under-ramp",
		Description: "Live scale-out: a 4th Raft group boots mid-ramp and the consistent-hash " +
			"ring moves ≈1/4 of the keyspace (drain → cutover → serve, writes fenced, reads " +
			"dual-read); measures moved-key fraction and mid-move tail latency",
		Measure:  MeasureThroughput,
		Topology: Topology{N: 3, Groups: 3, NodesPerGroup: 3},
		Network:  Stable(80 * time.Millisecond),
		Variant:  dynatune,
		Workload: &Workload{StartRPS: 1500, StepRPS: 500,
			StepDuration: Duration(10 * time.Second), Steps: 4, Keys: 4096},
		Faults: []Fault{{Kind: FaultAddGroup, At: Duration(12 * time.Second),
			Deadline: Duration(15 * time.Second)}},
		Reps: 1, Seed: 137,
	})
	register(Spec{
		Name: "scale-in-under-ramp",
		Description: "Live scale-in: the 4th Raft group retires mid-ramp, draining its ≈1/4 " +
			"keyspace share to the survivors before its nodes are decommissioned; the " +
			"remaining groups absorb the traffic",
		Measure:  MeasureThroughput,
		Topology: Topology{N: 3, Groups: 4, NodesPerGroup: 3},
		Network:  Stable(80 * time.Millisecond),
		Variant:  dynatune,
		Workload: &Workload{StartRPS: 1500, StepRPS: 500,
			StepDuration: Duration(10 * time.Second), Steps: 4, Keys: 4096},
		Faults: []Fault{{Kind: FaultRemoveGroup, At: Duration(12 * time.Second),
			Deadline: Duration(15 * time.Second)}},
		Reps: 1, Seed: 139,
	})
	register(Spec{
		Name: "follower-catchup-snapshot",
		Description: "Compaction × crash: the snapshot policy truncates group logs mid-ramp " +
			"while group 1's leader crashes for 12s — long enough for its successor to " +
			"compact past the crashed node's log — so the restarted node must catch up " +
			"via a chunked streamed snapshot, under a degraded-links window, with the " +
			"standing invariant suite green",
		Measure: MeasureThroughput,
		Topology: Topology{N: 3, Groups: 3, NodesPerGroup: 3, Persist: true,
			SnapshotEvery: 512, SnapshotRetain: 64, SnapshotChunk: 4096},
		Network: Stable(80 * time.Millisecond),
		Variant: dynatune,
		Workload: &Workload{StartRPS: 1500, StepRPS: 500,
			StepDuration: Duration(10 * time.Second), Steps: 4, Keys: 4096},
		Faults: []Fault{
			{Kind: FaultCrashNode, Group: 1, At: Duration(8 * time.Second),
				Duration: Duration(12 * time.Second)},
			{Kind: FaultDegradeLinks, At: Duration(14 * time.Second),
				Duration: Duration(6 * time.Second),
				RTT:      Duration(120 * time.Millisecond),
				Jitter:   Duration(4 * time.Millisecond), Loss: 0.05},
		},
		Invariants: &Invariants{},
		Reps:       1, Seed: 151,
	})
	register(Spec{
		Name: "pareto-middlebox",
		Description: "A misbehaving middlebox: degrade-links swaps all links to heavy-tailed " +
			"Pareto delay (alpha 1.5, scale 20ms) for 15s — the median barely moves but " +
			"multi-hundred-ms stragglers defeat estimators tuned on Gaussian jitter",
		Measure:  MeasureSeries,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{{Kind: FaultDegradeLinks, At: Duration(15 * time.Second),
			Duration: Duration(15 * time.Second),
			RTT:      Duration(100 * time.Millisecond), Jitter: Duration(20 * time.Millisecond),
			Dist: "pareto", Alpha: 1.5}},
		Seed: 149, Horizon: Duration(45 * time.Second), CPUEvery: Duration(5 * time.Second),
	})
	register(Spec{
		Name: "split-brain-2-3",
		Description: "Split-brain: nodes {1,2} are cut from {3,4,5} for 20s and healed; the " +
			"majority side must keep (or regain) a leader and the minority must never " +
			"commit — the no-double-commit assertion lives in the cluster tests",
		Measure:  MeasureSeries,
		Topology: n5, Network: Stable(100 * time.Millisecond), Variant: dynatune,
		Faults: []Fault{{Kind: FaultPartitionGroups, At: Duration(10 * time.Second),
			Duration: Duration(20 * time.Second), GroupA: []int{1, 2}, GroupB: []int{3, 4, 5}}},
		Seed: 131, Horizon: Duration(60 * time.Second), CPUEvery: Duration(5 * time.Second),
	})
}
