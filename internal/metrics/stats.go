// Package metrics provides the statistical machinery the evaluation
// harness uses to reproduce the paper's figures: running mean/stddev
// (Welford), windowed estimators backing the Dynatune tuner plots,
// empirical CDFs (Figs. 4 and 8), percentiles, and fixed-interval time
// series (Figs. 6 and 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// SampleStd returns the sample (n-1) standard deviation.
func (w *Welford) SampleStd() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Window is a fixed-capacity sliding window over float64 samples that
// maintains sum and sum-of-squares incrementally, giving O(1) mean and
// standard deviation. It backs the Dynatune RTTs list (paper §III-C1,
// §III-E: minListSize / maxListSize): when full, the oldest sample is
// discarded.
type Window struct {
	buf  []float64
	head int // index of oldest
	n    int
	sum  float64
	sum2 float64
}

// NewWindow returns a window holding at most capacity samples.
// Capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: NewWindow capacity %d", capacity))
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add appends a sample, evicting the oldest if the window is full.
func (w *Window) Add(x float64) {
	if w.n == len(w.buf) {
		old := w.buf[w.head]
		w.sum -= old
		w.sum2 -= old * old
		w.buf[w.head] = x
		w.head = (w.head + 1) % len(w.buf)
	} else {
		w.buf[(w.head+w.n)%len(w.buf)] = x
		w.n++
	}
	w.sum += x
	w.sum2 += x * x
}

// Reset discards all samples.
func (w *Window) Reset() {
	w.head, w.n, w.sum, w.sum2 = 0, 0, 0, 0
}

// Len returns the number of held samples.
func (w *Window) Len() int { return w.n }

// Max returns the largest held sample (0 when empty). O(n) scan — the
// window is small (≤ maxListSize) and callers run at heartbeat frequency.
func (w *Window) Max() float64 {
	if w.n == 0 {
		return 0
	}
	max := w.buf[w.head]
	for i := 1; i < w.n; i++ {
		if v := w.buf[(w.head+i)%len(w.buf)]; v > max {
			max = v
		}
	}
	return max
}

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Mean returns the mean of held samples (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Std returns the population standard deviation of held samples.
// Floating-point cancellation can drive the variance fractionally
// negative; it is clamped at zero.
func (w *Window) Std() float64 {
	if w.n < 2 {
		return 0
	}
	m := w.Mean()
	v := w.sum2/float64(w.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Sample is one empirical measurement expressed in seconds or any other
// unit the caller chooses.
type Sample = float64

// Summary holds the descriptive statistics the paper reports for a set of
// trials.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
	P90  float64
	P99  float64
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary. It copies and sorts xs; callers that already hold sorted data
// (or need several statistics from one sample set) should sort once and
// use SummarizeSorted / QuantileSorted instead.
func Summarize(xs []float64) Summary {
	return SummarizeSorted(SortedCopy(xs))
}

// SummarizeSorted computes a Summary over already-sorted data without
// copying. This is the sort-once path the experiment result aggregators
// use: one SortedCopy feeds the mean, extrema, and every quantile.
func SummarizeSorted(sorted []float64) Summary {
	if len(sorted) == 0 {
		return Summary{}
	}
	var w Welford
	for _, x := range sorted {
		w.Add(x)
	}
	return Summary{
		N:    len(sorted),
		Mean: w.Mean(),
		Std:  w.Std(),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  quantileSorted(sorted, 0.50),
		P90:  quantileSorted(sorted, 0.90),
		P99:  quantileSorted(sorted, 0.99),
	}
}

// SortedCopy returns an ascending copy of xs (nil stays an empty,
// non-nil-safe-to-use slice).
func SortedCopy(xs []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts xs; for
// several quantiles of one sample set use Quantiles or QuantileSorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quantileSorted(SortedCopy(xs), q)
}

// QuantileSorted returns the q-quantile of already-sorted data.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

// Quantiles returns the requested quantiles from a single sorted copy of
// xs — one sort for any number of quantiles, where repeated Quantile
// calls would re-copy and re-sort per call.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := SortedCopy(xs)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs under the normal approximation (1.96·s/√n with the sample
// standard deviation), or 0 with fewer than two samples. The sweep
// engine reports it per grid cell over the per-repetition means, so a
// campaign diff can tell a real regression from rep-to-rep noise.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return 1.96 * w.SampleStd() / math.Sqrt(float64(len(xs)))
}

// DurationsToMillis converts durations to float64 milliseconds, the unit
// the paper reports everywhere.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}
