package netsim

import (
	"fmt"
	"math"
	"time"

	"dynatune/internal/sim"
)

// Class selects delivery semantics for a packet.
type Class int

const (
	// TCP is reliable and in-order per link; loss costs a retransmission
	// delay and head-of-line blocks later segments.
	TCP Class = iota
	// UDP is best-effort: independent delay, Bernoulli loss, possible
	// duplication, no ordering.
	UDP
)

func (c Class) String() string {
	switch c {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Stats counts per-link traffic, split by class.
type Stats struct {
	Sent      [2]uint64
	Delivered [2]uint64
	Dropped   [2]uint64 // UDP losses and flush drops; TCP drops count as retransmissions
	Retrans   uint64    // TCP segments that needed recovery
	Dups      uint64
}

// link is one directed path between two nodes.
type link struct {
	profile Profile
	// tcpFloor enforces in-order delivery: the earliest time the next TCP
	// segment may be handed to the application.
	tcpFloor time.Duration
	down     bool
	// reordering marks an open reorder window: packets crossing the link
	// are held and released together, permuted, when the window closes
	// (see ReorderWindow). reorderUntil is the window's current deadline.
	reordering   bool
	reorderUntil time.Duration
	// key is the link's slot index (from*n+to), the handle into the
	// network's generic reorder buffers.
	key   int
	stats Stats
}

// pending is one pooled in-flight delivery. Each pooled packet owns a
// single reusable callback (built once, when the packet is first created)
// so that scheduling a delivery allocates neither a closure nor a packet
// in the steady state — the per-Send capturing closures this replaces were
// the simulator's dominant allocation after the event queue itself.
type pending[T any] struct {
	nw   *Network[T]
	to   int
	msg  T
	fire func()
}

// run hands the packet to the sink and returns it to the pool. The packet
// is released before the sink runs so a sink that immediately Sends again
// can reuse it.
func (p *pending[T]) run() {
	nw, to, msg := p.nw, p.to, p.msg
	var zero T
	p.msg = zero // drop payload references while pooled
	nw.pool = append(nw.pool, p)
	nw.sink(to, msg)
}

// Network simulates the mesh between n nodes. The payload type is opaque;
// the sink receives delivered packets. Not safe for concurrent use — it
// lives on the simulation goroutine.
type Network[T any] struct {
	eng   *sim.Engine
	n     int
	links []*link // [from*n+to]
	sink  func(to int, msg T)
	pool  []*pending[T] // recycled in-flight packets

	// minRTO floors the TCP retransmission delay when the pipe is idle
	// (Linux's 200 ms minimum RTO). When a stream is busy, fast retransmit
	// recovers in about one RTT; we approximate recovery as
	// max(RTT, fastRetransFloor) + jitter and never exceed minRTO+RTT.
	minRTO time.Duration

	// procDelta adds a tiny serialization delay to each delivery so that
	// simultaneous sends do not produce exactly equal timestamps downstream.
	seq time.Duration

	// reorderBufs holds, per link index, the packets captured by an open
	// reorder window (the link struct is payload-agnostic, so the generic
	// buffers live here). Accessed only by link index — never iterated —
	// so map order cannot leak into the simulation.
	reorderBufs map[int][]T
}

// DefaultMinRTO mirrors Linux's TCP_RTO_MIN.
const DefaultMinRTO = 200 * time.Millisecond

// New creates a network of n nodes with every directed link using profile.
func New[T any](eng *sim.Engine, n int, profile Profile, sink func(to int, msg T)) *Network[T] {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	nw := &Network[T]{
		eng:    eng,
		n:      n,
		links:  make([]*link, n*n),
		sink:   sink,
		minRTO: DefaultMinRTO,
	}
	for i := range nw.links {
		nw.links[i] = &link{profile: profile, key: i}
	}
	return nw
}

// N returns the number of nodes.
func (nw *Network[T]) N() int { return nw.n }

func (nw *Network[T]) link(from, to int) *link {
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("netsim: link %d->%d out of range (n=%d)", from, to, nw.n))
	}
	return nw.links[from*nw.n+to]
}

// SetProfile replaces the schedule of the directed link from→to.
func (nw *Network[T]) SetProfile(from, to int, p Profile) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	nw.link(from, to).profile = p
}

// SetAllProfiles replaces every inter-node link's schedule (self-links are
// untouched), mirroring the experiment scripts that reconfigure every
// container identically.
func (nw *Network[T]) SetAllProfiles(p Profile) {
	for from := 0; from < nw.n; from++ {
		for to := 0; to < nw.n; to++ {
			if from != to {
				nw.SetProfile(from, to, p)
			}
		}
	}
}

// SetDown marks the directed link from→to as partitioned (all packets
// dropped) or restores it.
func (nw *Network[T]) SetDown(from, to int, down bool) {
	nw.link(from, to).down = down
}

// PartitionNode isolates (or reconnects) a node in both directions.
func (nw *Network[T]) PartitionNode(id int, down bool) {
	for other := 0; other < nw.n; other++ {
		if other == id {
			continue
		}
		nw.SetDown(id, other, down)
		nw.SetDown(other, id, down)
	}
}

// SetNodeInbound cuts (or restores) every link delivering TO node id while
// leaving its outbound links alone: the node keeps talking but hears
// nothing. An asymmetric partition of a leader this way suppresses the
// followers' failure detectors (heartbeats still arrive) until the deaf
// leader abdicates via check-quorum — the stale-leader path the symmetric
// partition never exercises.
func (nw *Network[T]) SetNodeInbound(id int, down bool) {
	for other := 0; other < nw.n; other++ {
		if other != id {
			nw.SetDown(other, id, down)
		}
	}
}

// SetNodeOutbound cuts (or restores) every link sending FROM node id while
// leaving its inbound links alone: the node hears everything but cannot be
// heard.
func (nw *Network[T]) SetNodeOutbound(id int, down bool) {
	for other := 0; other < nw.n; other++ {
		if other != id {
			nw.SetDown(id, other, down)
		}
	}
}

// PartitionGroups cuts (or heals) every directed link crossing between the
// two node sets, in both directions — the classic split-brain injection.
// Links inside either set are untouched; membership of both sets is the
// caller's problem (a node listed in both ends up disconnected from both
// sides' complements, which is also a valid, if cruel, scenario).
func (nw *Network[T]) PartitionGroups(a, b []int, down bool) {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				continue
			}
			nw.SetDown(x, y, down)
			nw.SetDown(y, x, down)
		}
	}
}

// ProfileOf returns the schedule currently installed on from→to, so a
// fault injector can degrade a link and later restore exactly what it
// displaced.
func (nw *Network[T]) ProfileOf(from, to int) Profile {
	return nw.link(from, to).profile
}

// StatsFor returns a copy of the directed link's counters.
func (nw *Network[T]) StatsFor(from, to int) Stats {
	return nw.link(from, to).stats
}

// Params returns the link conditions in force right now on from→to.
func (nw *Network[T]) Params(from, to int) Params {
	return nw.link(from, to).profile.At(nw.eng.Now())
}

// Send transmits msg from→to with the given class semantics. Self-sends
// are delivered after a negligible local delay.
func (nw *Network[T]) Send(from, to int, cls Class, msg T) {
	now := nw.eng.Now()
	if from == to {
		nw.scheduleDelivery(now+time.Microsecond, to, msg)
		return
	}
	l := nw.link(from, to)
	l.stats.Sent[cls]++
	if l.down {
		l.stats.Dropped[cls]++
		return
	}
	p := l.profile.At(now)
	rng := nw.eng.Rand()

	oneWay := p.RTT/2 + nw.jitter(p)
	if oneWay < time.Microsecond {
		oneWay = time.Microsecond
	}
	arrival := now + oneWay
	flushed := l.profile.FlushOnChange && l.profile.BoundaryBetween(now, arrival)

	switch cls {
	case UDP:
		if flushed || rng.Float64() < p.Loss {
			l.stats.Dropped[UDP]++
			return
		}
		nw.deliver(l, cls, arrival, to, msg)
		if p.Dup > 0 && rng.Float64() < p.Dup {
			l.stats.Dups++
			nw.deliver(l, cls, arrival+nw.jitterAbs(p), to, msg)
		}
	case TCP:
		// Each loss (or a flush of the netem queue) costs one recovery
		// round. Recovery on a busy stream is roughly one RTT (fast
		// retransmit); we floor it at a fraction of the idle-stream RTO.
		// Retransmissions can themselves be lost, adding further rounds
		// (bounded to keep p=1 from looping forever).
		lost := flushed || rng.Float64() < p.Loss
		if lost {
			l.stats.Retrans++
			arrival += nw.recovery(p)
			for round := 0; round < 8 && rng.Float64() < p.Loss; round++ {
				arrival += nw.recovery(p)
			}
		}
		// In-order delivery: never before a previously sent segment.
		if arrival <= l.tcpFloor {
			arrival = l.tcpFloor + time.Microsecond
		}
		l.tcpFloor = arrival
		nw.deliver(l, cls, arrival, to, msg)
	default:
		panic(fmt.Sprintf("netsim: unknown class %d", cls))
	}
}

func (nw *Network[T]) deliver(l *link, cls Class, at time.Duration, to int, msg T) {
	l.stats.Delivered[cls]++
	if l.reordering {
		// The middlebox model: packets entering the link during an open
		// reorder window are buffered and released together — permuted —
		// when the window closes, discarding the arrival order the delay
		// draws above established. TCP's in-order floor still advanced in
		// Send, so segments sent *after* the window can overtake held ones:
		// exactly the cross-stream reordering the burst is meant to inject.
		nw.reorderBufs[l.key] = append(nw.reorderBufs[l.key], msg)
		return
	}
	nw.scheduleDelivery(at, to, msg)
}

// ReorderWindow opens (or extends) a reordering burst of length d on the
// directed link from→to: every packet crossing the link while the window
// is open is held, and when the window closes the held packets are
// released in an order permuted under the engine's seeded RNG. This
// models middlebox buffer-flush behavior — bursts of correlated
// reordering rather than independent per-packet jitter.
func (nw *Network[T]) ReorderWindow(from, to int, d time.Duration) {
	if d <= 0 {
		return
	}
	l := nw.link(from, to)
	until := nw.eng.Now() + d
	if l.reordering {
		if until > l.reorderUntil {
			l.reorderUntil = until // the armed flush re-checks the deadline
		}
		return
	}
	if nw.reorderBufs == nil {
		nw.reorderBufs = make(map[int][]T)
	}
	l.reordering = true
	l.reorderUntil = until
	nw.eng.Schedule(until, func() { nw.flushReorder(l, to) })
}

// ReorderAll opens a reordering burst on every inter-node link at once —
// the correlated, mesh-wide flavor a congested fabric middlebox produces.
func (nw *Network[T]) ReorderAll(d time.Duration) {
	for from := 0; from < nw.n; from++ {
		for to := 0; to < nw.n; to++ {
			if from != to {
				nw.ReorderWindow(from, to, d)
			}
		}
	}
}

// flushReorder closes one link's reorder window, releasing the held
// packets in a seed-permuted order with microsecond spacing.
func (nw *Network[T]) flushReorder(l *link, to int) {
	now := nw.eng.Now()
	if now < l.reorderUntil {
		// The window was extended after this flush was armed.
		nw.eng.Schedule(l.reorderUntil, func() { nw.flushReorder(l, to) })
		return
	}
	l.reordering = false
	buf := nw.reorderBufs[l.key]
	delete(nw.reorderBufs, l.key)
	rng := nw.eng.Rand()
	for i := len(buf) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		buf[i], buf[j] = buf[j], buf[i]
	}
	for i, msg := range buf {
		nw.scheduleDelivery(now+time.Duration(i+1)*time.Microsecond, to, msg)
	}
}

// scheduleDelivery queues (to, msg) for the sink at the given instant
// through the pending-packet pool: zero allocations once the pool has
// grown to the network's in-flight high-water mark.
func (nw *Network[T]) scheduleDelivery(at time.Duration, to int, msg T) {
	var p *pending[T]
	if n := len(nw.pool); n > 0 {
		p = nw.pool[n-1]
		nw.pool = nw.pool[:n-1]
	} else {
		p = &pending[T]{nw: nw}
		p.fire = p.run
	}
	p.to, p.msg = to, msg
	nw.eng.Schedule(at, p.fire)
}

// recovery returns the extra delay for one TCP loss-recovery round.
func (nw *Network[T]) recovery(p Params) time.Duration {
	r := p.RTT + 3*p.Jitter + 10*time.Millisecond
	if min := nw.minRTO / 4; r < min {
		r = min
	}
	return r
}

// paretoCap bounds the heavy-tailed extra delay: an unbounded draw could
// strand a TCP stream's in-order floor minutes into the future, turning
// one straggler into a permanent outage the middlebox model doesn't mean.
const paretoCap = 5 * time.Second

// jitter returns the per-packet delay-noise term: symmetric Gaussian
// (clamped so the one-way delay never goes below half its nominal value)
// for DistNormal, a one-sided Pareto excess for DistPareto.
func (nw *Network[T]) jitter(p Params) time.Duration {
	if p.Jitter <= 0 {
		return 0
	}
	if p.Dist == DistPareto {
		// Excess over zero with scale Jitter, shape Alpha: the median is
		// Jitter·(2^(1/α)−1) ≈ sub-jitter, but the tail is polynomial.
		u := nw.eng.Rand().Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		j := time.Duration(float64(p.Jitter) * (math.Pow(u, -1/p.Alpha) - 1))
		if j > paretoCap {
			j = paretoCap
		}
		return j
	}
	j := time.Duration(nw.eng.Rand().NormFloat64() * float64(p.Jitter))
	if low := -p.RTT / 4; j < low {
		j = low
	}
	return j
}

// jitterAbs returns a non-negative noise term.
func (nw *Network[T]) jitterAbs(p Params) time.Duration {
	j := nw.jitter(p)
	if j < 0 {
		j = -j
	}
	return j + time.Microsecond
}
