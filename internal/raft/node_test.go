package raft

import (
	"fmt"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	rt := &testRuntime{}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero id", Config{Peers: []ID{1}, Runtime: rt, Tuner: NewStaticTuner(time.Second, 100*time.Millisecond)}},
		{"nil runtime", Config{ID: 1, Peers: []ID{1}, Tuner: NewStaticTuner(time.Second, 100*time.Millisecond)}},
		{"nil tuner", Config{ID: 1, Peers: []ID{1}, Runtime: rt}},
		{"id not in peers", Config{ID: 9, Peers: []ID{1, 2}, Runtime: rt, Tuner: NewStaticTuner(time.Second, 100*time.Millisecond)}},
		{"duplicate peer", Config{ID: 1, Peers: []ID{1, 1}, Runtime: rt, Tuner: NewStaticTuner(time.Second, 100*time.Millisecond)}},
		{"zero peer", Config{ID: 1, Peers: []ID{1, 0}, Runtime: rt, Tuner: NewStaticTuner(time.Second, 100*time.Millisecond)}},
	}
	for _, tc := range cases {
		if _, err := NewNode(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestInitialElection(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	if lead == nil {
		t.Fatal("no leader elected within 10s")
	}
	// All live nodes should converge on the leader.
	c.run(2 * time.Second)
	for _, n := range c.nodes {
		if n.Lead() != lead.ID() {
			t.Fatalf("node %d believes leader %d, want %d", n.ID(), n.Lead(), lead.ID())
		}
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestFiveNodeElection(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	if c.waitLeader(10*time.Second) == nil {
		t.Fatal("no leader in 5-node cluster")
	}
}

func TestSingleNodeBecomesLeaderImmediately(t *testing.T) {
	opts := defaultOpts()
	opts.n = 1
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("single node did not become leader")
	}
	if _, err := lead.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run(10 * time.Millisecond)
	if lead.Log().Committed() < 2 {
		t.Fatalf("committed = %d, want ≥ 2 (noop + proposal)", lead.Log().Committed())
	}
}

func TestProposeReplicatesAndApplies(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	for i := 0; i < 10; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)
	for i, n := range c.nodes {
		if got := n.Log().Committed(); got != lead.Log().Committed() {
			t.Fatalf("node %d committed %d, leader %d", n.ID(), got, lead.Log().Committed())
		}
		// Applied entries: noop (nil) + 10 commands.
		var cmds int
		for _, e := range c.rts[i].applied {
			if e.Data != nil {
				cmds++
			}
		}
		if cmds != 10 {
			t.Fatalf("node %d applied %d commands, want 10", n.ID(), cmds)
		}
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	for _, n := range c.nodes {
		if n == lead {
			continue
		}
		if _, err := n.Propose([]byte("x")); err != ErrNotLeader {
			t.Fatalf("follower Propose err = %v, want ErrNotLeader", err)
		}
	}
}

func TestLeaderFailureTriggersReelection(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	old := c.waitLeader(10 * time.Second)
	if old == nil {
		t.Fatal("no initial leader")
	}
	c.crash(old.ID())
	c.run(10 * time.Second)
	lead := c.leader()
	if lead == nil || lead.ID() == old.ID() {
		t.Fatalf("no new leader after crash (got %v)", lead)
	}
	if lead.Term() <= old.Term() {
		t.Fatalf("new term %d not greater than old %d", lead.Term(), old.Term())
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionEventEmittedOnLeaderFailure(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	old := c.waitLeader(10 * time.Second)
	c.run(3 * time.Second) // settle
	crashAt := c.eng.Now()
	c.crash(old.ID())
	c.run(10 * time.Second)
	var detect *Event
	for i := range c.events {
		ev := c.events[i]
		if ev.Kind == EventTimeout && ev.Time > crashAt {
			detect = &ev
			break
		}
	}
	if detect == nil {
		t.Fatal("no EventTimeout after leader crash")
	}
	d := detect.Time - crashAt
	// Et=1000ms, randomized ∈ [1000,2000): first of 4 followers should
	// detect within (900ms, 2100ms) allowing heartbeat phase.
	if d < 900*time.Millisecond || d > 2100*time.Millisecond {
		t.Fatalf("detection latency %v outside [0.9s, 2.1s]", d)
	}
}

func TestOldLeaderStepsDownOnReturn(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	old := c.waitLeader(10 * time.Second)
	c.crash(old.ID())
	c.run(10 * time.Second)
	newLead := c.leader()
	if newLead == nil {
		t.Fatal("no new leader")
	}
	c.restart(old.ID())
	c.run(5 * time.Second)
	if old.State() == StateLeader {
		t.Fatal("stale leader did not step down")
	}
	if old.Lead() != newLead.ID() && c.leader() != nil {
		// Leadership may have moved again; just require the old node is a
		// follower of the current leader's term.
		if old.Term() < newLead.Term() {
			t.Fatalf("old leader term %d below cluster term %d", old.Term(), newLead.Term())
		}
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestNoQuorumNoLeader(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	// Crash 3 of 5 (including the leader): the survivors must never elect.
	crashed := 0
	c.crash(lead.ID())
	for _, n := range c.nodes {
		if n != lead && crashed < 2 {
			c.crash(n.ID())
			crashed++
		}
	}
	c.run(30 * time.Second)
	if l := c.leader(); l != nil {
		t.Fatalf("leader %d elected without quorum", l.ID())
	}
}

func TestCheckQuorumStepsLeaderDown(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	// Partition the leader away from everyone.
	c.net.PartitionNode(int(lead.ID()-1), true)
	c.run(5 * time.Second)
	if lead.State() == StateLeader {
		t.Fatal("partitioned leader did not abdicate via check-quorum")
	}
	// Majority side elects a new leader.
	if l := c.leader(); l == nil {
		t.Fatal("majority side has no leader")
	}
}

func TestPreVotePreventsTermInflationByPartitionedNode(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(2 * time.Second)
	termBefore := lead.Term()
	// Isolate a follower; it will campaign fruitlessly.
	var victim *Node
	for _, n := range c.nodes {
		if n != lead {
			victim = n
			break
		}
	}
	c.net.PartitionNode(int(victim.ID()-1), true)
	c.run(30 * time.Second)
	// With pre-vote, the isolated node never increments its real term, so
	// when it reconnects it cannot disrupt the stable leader.
	c.net.PartitionNode(int(victim.ID()-1), false)
	c.run(5 * time.Second)
	cur := c.leader()
	if cur == nil {
		t.Fatal("no leader after heal")
	}
	if cur.Term() > termBefore {
		t.Fatalf("term inflated %d → %d despite pre-vote", termBefore, cur.Term())
	}
	if victim.Term() != termBefore {
		t.Fatalf("victim term %d, want %d", victim.Term(), termBefore)
	}
}

func TestWithoutPreVotePartitionedNodeDisrupts(t *testing.T) {
	// Control experiment for the test above: with pre-vote disabled the
	// isolated node's term grows and deposes the leader on reconnect.
	opts := defaultOpts()
	opts.n = 5
	opts.noPreVote = true
	opts.noCheckQ = true
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(2 * time.Second)
	termBefore := lead.Term()
	var victim *Node
	for _, n := range c.nodes {
		if n != lead {
			victim = n
			break
		}
	}
	c.net.PartitionNode(int(victim.ID()-1), true)
	c.run(30 * time.Second)
	if victim.Term() <= termBefore {
		t.Fatalf("victim term did not grow without pre-vote (%d)", victim.Term())
	}
	c.net.PartitionNode(int(victim.ID()-1), false)
	c.run(5 * time.Second)
	cur := c.leader()
	if cur == nil {
		t.Fatal("no leader after heal")
	}
	if cur.Term() <= termBefore {
		t.Fatalf("term should have inflated without pre-vote: %d ≤ %d", cur.Term(), termBefore)
	}
}

func TestFollowerCatchesUpAfterRestart(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 20; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)
	c.restart(follower.ID())
	c.run(3 * time.Second)
	if follower.Log().Committed() != lead.Log().Committed() {
		t.Fatalf("follower committed %d, leader %d", follower.Log().Committed(), lead.Log().Committed())
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
}

func TestDivergentLogTruncated(t *testing.T) {
	// Classic scenario: leader takes proposals that never commit, crashes;
	// new leader overwrites them.
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	// Cut the leader off, then let it accept doomed proposals.
	c.net.PartitionNode(int(lead.ID()-1), true)
	if _, err := lead.Propose([]byte("doomed-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := lead.Propose([]byte("doomed-2")); err != nil {
		t.Fatal(err)
	}
	doomedLast := lead.Log().LastIndex()
	c.run(10 * time.Second)
	newLead := c.leader()
	if newLead == nil || newLead.ID() == lead.ID() {
		t.Fatal("no replacement leader")
	}
	if _, err := newLead.Propose([]byte("committed-1")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	// Heal: old leader must truncate its doomed suffix and adopt the new
	// leader's entries.
	c.net.PartitionNode(int(lead.ID()-1), false)
	c.run(5 * time.Second)
	if lead.Log().Committed() != newLead.Log().Committed() {
		t.Fatalf("old leader committed %d, new %d", lead.Log().Committed(), newLead.Log().Committed())
	}
	for idx := lead.Log().FirstIndex() + 1; idx <= doomedLast; idx++ {
		e, ok := lead.Log().Entry(idx)
		if ok && (string(e.Data) == "doomed-1" || string(e.Data) == "doomed-2") {
			t.Fatalf("doomed entry survived at %d", idx)
		}
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRequiresQuorum(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	committedBefore := lead.Log().Committed()
	// Cut off 3 followers: proposals can reach at most 1 follower → no quorum.
	cut := 0
	for _, n := range c.nodes {
		if n != lead && cut < 3 {
			c.net.PartitionNode(int(n.ID()-1), true)
			cut++
		}
	}
	if _, err := lead.Propose([]byte("stuck")); err != nil {
		t.Fatal(err)
	}
	c.run(500 * time.Millisecond) // less than Et so check-quorum hasn't fired
	if lead.Log().Committed() != committedBefore {
		t.Fatalf("entry committed without quorum (%d → %d)", committedBefore, lead.Log().Committed())
	}
}

func TestRandomizedTimeoutTracksEt(t *testing.T) {
	st := NewStaticTuner(time.Second, 100*time.Millisecond)
	opts := defaultOpts()
	opts.tuners = func(int) Tuner { return st }
	c := newTestCluster(opts)
	c.waitLeader(10 * time.Second)
	n := c.nodes[0]
	r1 := n.RandomizedTimeout()
	if r1 < time.Second || r1 >= 2*time.Second {
		t.Fatalf("randomized %v outside [Et, 2Et)", r1)
	}
	// Halve Et: randomized must follow proportionally (same ratio u).
	st.Et = 500 * time.Millisecond
	r2 := n.RandomizedTimeout()
	if r2 < 500*time.Millisecond || r2 >= time.Second {
		t.Fatalf("randomized %v did not track Et", r2)
	}
	ratio1 := float64(r1)/float64(time.Second) - 1
	ratio2 := float64(r2)/float64(500*time.Millisecond) - 1
	// Duration truncation to whole nanoseconds introduces tiny error.
	if diff := ratio1 - ratio2; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ratio changed: %v vs %v", ratio1, ratio2)
	}
}

func TestHeartbeatsKeepFollowersQuiet(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	c.waitLeader(10 * time.Second)
	settled := c.eng.Now()
	c.run(60 * time.Second)
	for _, ev := range c.events {
		if ev.Kind == EventTimeout && ev.Time > settled+2*time.Second {
			t.Fatalf("spurious timeout on node %d at %v under healthy network", ev.Node, ev.Time)
		}
	}
}

func TestLeaderCompleteness(t *testing.T) {
	// Committed entries survive leadership changes.
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	if _, err := lead.Propose([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	idx := lead.Log().Committed()
	c.crash(lead.ID())
	c.run(10 * time.Second)
	newLead := c.leader()
	if newLead == nil {
		t.Fatal("no new leader")
	}
	e, ok := newLead.Log().Entry(idx)
	if !ok || string(e.Data) != "durable" {
		t.Fatalf("committed entry lost after leader change: %v %q", ok, e.Data)
	}
}

func TestCompactLogPreservesReplication(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	for i := 0; i < 200; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			c.run(100 * time.Millisecond)
			for _, n := range c.nodes {
				n.CompactLog(8)
			}
		}
	}
	c.run(2 * time.Second)
	for _, n := range c.nodes {
		if n.Log().Committed() != lead.Log().Committed() {
			t.Fatalf("node %d committed %d after compaction, leader %d",
				n.ID(), n.Log().Committed(), lead.Log().Committed())
		}
	}
	if lead.Log().Len() >= 200 {
		t.Fatalf("leader log not compacted: %d entries", lead.Log().Len())
	}
}

func TestLateFollowerAfterCompactionStillCatchesUp(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 100; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)
	lead.CompactLog(4) // compacts past the dead follower's match
	c.restart(follower.ID())
	c.run(5 * time.Second)
	// The follower cannot retrieve compacted entries (no snapshots), but
	// replication must keep the cluster live and the follower must reach
	// the retained region without violating safety.
	if c.leader() == nil {
		t.Fatal("cluster lost leadership after compaction")
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestEventLeaderElectedCarriesTerm(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	found := false
	for _, ev := range c.events {
		if ev.Kind == EventLeaderElected && ev.Node == lead.ID() {
			if ev.Term != lead.Term() {
				t.Fatalf("event term %d, leader term %d", ev.Term, lead.Term())
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no EventLeaderElected for the winner")
	}
}

func TestStaticTunerDefaults(t *testing.T) {
	st := NewStaticTuner(time.Second, 100*time.Millisecond)
	if st.ElectionTimeout() != time.Second {
		t.Fatal("Et")
	}
	if st.HeartbeatInterval(1) != 100*time.Millisecond {
		t.Fatal("h")
	}
	if m := st.PrepareHeartbeat(1, time.Second); m != (HeartbeatMeta{}) {
		t.Fatal("static tuner must not emit metadata")
	}
	if r := st.ObserveHeartbeat(1, HeartbeatMeta{Seq: 9}, time.Second); r != (HeartbeatRespMeta{}) {
		t.Fatal("static tuner must not respond with metadata")
	}
	st.Reset(ResetTimeout) // must be a no-op, not panic
	st.ObserveHeartbeatResp(1, HeartbeatRespMeta{}, 0)
}

func TestStringers(t *testing.T) {
	// Exercise the String methods for coverage of diagnostics.
	for s := StateFollower; s <= StateLeader+1; s++ {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
	for m := MsgApp; m <= MsgVoteResp+1; m++ {
		if m.String() == "" {
			t.Fatal("empty msg string")
		}
	}
	for k := EventTimeout; k <= EventSplitVote+1; k++ {
		if k.String() == "" {
			t.Fatal("empty event string")
		}
	}
	for r := ResetTimeout; r <= ResetBecameLeader+1; r++ {
		if r.String() == "" {
			t.Fatal("empty reset string")
		}
	}
}
