package shard

import (
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/workload"
)

// TestRunRampRepsDeterministicAcrossWorkers pins that the sharded-ramp
// repetitions — routed through the parallel trial runner — produce
// identical per-rep results for any worker count.
func TestRunRampRepsDeterministicAcrossWorkers(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 1000, StepRPS: 0, StepDuration: time.Second, Steps: 2}
	opts := Options{Groups: 2, NodesPerGroup: 3, Seed: 71, Variant: cluster.VariantRaft(), Profile: fastProfile()}
	run := func(workers string) []RampResult {
		t.Setenv("DYNATUNE_TRIAL_WORKERS", workers)
		return RunRampReps(opts, ramp, LoadOptions{Keys: 256}, 3)
	}
	seq := run("1")
	par := run("4")
	if len(seq) != 3 || len(par) != 3 {
		t.Fatalf("rep counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Completed != par[i].Completed || seq[i].AggThroughput != par[i].AggThroughput ||
			seq[i].P99Ms != par[i].P99Ms || seq[i].Lost != par[i].Lost {
			t.Fatalf("rep %d diverged: %+v vs %+v", i, seq[i], par[i])
		}
		if seq[i].Completed == 0 {
			t.Fatalf("rep %d completed nothing", i)
		}
	}
	// Reps use distinct seeds, so at least one pair must differ.
	if seq[0].Completed == seq[1].Completed && seq[0].P99Ms == seq[1].P99Ms {
		t.Log("warning: reps 0 and 1 identical — seed derivation may be inert")
	}
	if m := MeanAggThroughput(seq); m <= 0 {
		t.Fatalf("mean aggregate throughput %v", m)
	}
	if MeanAggThroughput(nil) != 0 {
		t.Fatal("MeanAggThroughput(nil) != 0")
	}
}
