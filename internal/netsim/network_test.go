package netsim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"dynatune/internal/sim"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

type delivery struct {
	to  int
	msg int
	at  time.Duration
}

func newTestNet(seed int64, n int, p Params) (*sim.Engine, *Network[int], *[]delivery) {
	eng := sim.NewEngine(seed)
	var got []delivery
	var nw *Network[int]
	nw = New(eng, n, Constant(p), func(to, msg int) {
		got = append(got, delivery{to: to, msg: msg, at: eng.Now()})
	})
	return eng, nw, &got
}

func TestProfileAt(t *testing.T) {
	p := Profile{Segments: []Segment{
		{Start: 0, Params: Params{RTT: ms(50)}},
		{Start: time.Minute, Params: Params{RTT: ms(100)}},
	}}
	if got := p.At(0); got.RTT != ms(50) {
		t.Fatalf("At(0).RTT = %v", got.RTT)
	}
	if got := p.At(time.Minute - 1); got.RTT != ms(50) {
		t.Fatalf("At(1m-1).RTT = %v", got.RTT)
	}
	if got := p.At(time.Minute); got.RTT != ms(100) {
		t.Fatalf("At(1m).RTT = %v", got.RTT)
	}
	if got := p.At(time.Hour); got.RTT != ms(100) {
		t.Fatalf("At(1h).RTT = %v", got.RTT)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Segments: []Segment{{Start: 0}, {Start: 0}}},
		{Segments: []Segment{{Start: 0, Params: Params{Loss: 1.5}}}},
		{Segments: []Segment{{Start: 0, Params: Params{RTT: -1}}}},
		{Segments: []Segment{{Start: 0, Params: Params{Dup: -0.1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should fail validation", i)
		}
	}
	if err := Constant(Params{RTT: ms(10)}).Validate(); err != nil {
		t.Fatalf("constant profile invalid: %v", err)
	}
}

func TestProfileBoundaryBetween(t *testing.T) {
	p := RTTSteps(Params{}, time.Minute, ms(50), ms(60), ms(70))
	if p.BoundaryBetween(0, time.Second) {
		t.Fatal("no boundary in first second")
	}
	if !p.BoundaryBetween(time.Minute-time.Second, time.Minute) {
		t.Fatal("boundary at 1m not detected")
	}
	if p.BoundaryBetween(2*time.Minute+time.Second, 3*time.Minute) {
		t.Fatal("no boundary after last segment")
	}
}

func TestGradualRampShape(t *testing.T) {
	p := GradualRTTRamp(Params{}, ms(50), ms(200), ms(10), time.Minute)
	// 16 up (50..200) + 15 down (190..50) = 31 segments.
	if len(p.Segments) != 31 {
		t.Fatalf("segments = %d, want 31", len(p.Segments))
	}
	if p.Segments[0].Params.RTT != ms(50) || p.Segments[15].Params.RTT != ms(200) || p.Segments[30].Params.RTT != ms(50) {
		t.Fatalf("ramp endpoints wrong: %v %v %v",
			p.Segments[0].Params.RTT, p.Segments[15].Params.RTT, p.Segments[30].Params.RTT)
	}
	if !p.FlushOnChange {
		t.Fatal("tc-style ramps must flush on change")
	}
}

func TestLossSweepShape(t *testing.T) {
	p := LossSweep(Params{RTT: ms(200)}, 3*time.Minute)
	if len(p.Segments) != 13 {
		t.Fatalf("segments = %d, want 13", len(p.Segments))
	}
	if p.Segments[6].Params.Loss != 0.30 {
		t.Fatalf("peak loss = %v, want 0.30", p.Segments[6].Params.Loss)
	}
	if p.Segments[6].Params.RTT != ms(200) {
		t.Fatal("RTT not preserved by loss sweep")
	}
}

func TestUDPDelayIsHalfRTT(t *testing.T) {
	eng, nw, got := newTestNet(1, 2, Params{RTT: ms(100)})
	eng.Schedule(0, func() { nw.Send(0, 1, UDP, 7) })
	eng.Run(time.Second)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	if (*got)[0].at != ms(50) {
		t.Fatalf("arrival = %v, want 50ms", (*got)[0].at)
	}
	if (*got)[0].to != 1 || (*got)[0].msg != 7 {
		t.Fatalf("delivery = %+v", (*got)[0])
	}
}

func TestUDPLossDropsAll(t *testing.T) {
	eng, nw, got := newTestNet(1, 2, Params{RTT: ms(10), Loss: 1})
	for i := 0; i < 100; i++ {
		i := i
		eng.Schedule(time.Duration(i)*ms(1), func() { nw.Send(0, 1, UDP, i) })
	}
	eng.Run(time.Second)
	if len(*got) != 0 {
		t.Fatalf("deliveries = %d, want 0 at loss=1", len(*got))
	}
	st := nw.StatsFor(0, 1)
	if st.Sent[UDP] != 100 || st.Dropped[UDP] != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUDPLossRateApproximate(t *testing.T) {
	eng, nw, got := newTestNet(42, 2, Params{RTT: ms(10), Loss: 0.3})
	const n = 5000
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*time.Millisecond, func() { nw.Send(0, 1, UDP, i) })
	}
	eng.Run(time.Hour)
	rate := 1 - float64(len(*got))/float64(n)
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %v, want ≈0.30", rate)
	}
}

func TestUDPDuplication(t *testing.T) {
	eng, nw, got := newTestNet(7, 2, Params{RTT: ms(10), Dup: 1})
	eng.Schedule(0, func() { nw.Send(0, 1, UDP, 1) })
	eng.Run(time.Second)
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2 with dup=1", len(*got))
	}
}

func TestTCPReliableUnderTotalLoss(t *testing.T) {
	// Even at loss=1 TCP delivers (after bounded retransmission rounds).
	eng, nw, got := newTestNet(1, 2, Params{RTT: ms(10), Loss: 1})
	eng.Schedule(0, func() { nw.Send(0, 1, TCP, 9) })
	eng.Run(time.Minute)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	if (*got)[0].at <= ms(5) {
		t.Fatalf("arrival %v should include recovery delay", (*got)[0].at)
	}
}

func TestTCPInOrder(t *testing.T) {
	// With heavy jitter and loss, TCP deliveries must still be in send
	// order; UDP need not be.
	eng, nw, got := newTestNet(3, 2, Params{RTT: ms(50), Jitter: ms(20), Loss: 0.2})
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*ms(2), func() { nw.Send(0, 1, TCP, i) })
	}
	eng.Run(time.Minute)
	if len(*got) != n {
		t.Fatalf("deliveries = %d, want %d", len(*got), n)
	}
	for i := 1; i < n; i++ {
		if (*got)[i].msg != (*got)[i-1].msg+1 {
			t.Fatalf("out of order at %d: %d after %d", i, (*got)[i].msg, (*got)[i-1].msg)
		}
		if (*got)[i].at < (*got)[i-1].at {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

func TestTCPHeadOfLineBlocking(t *testing.T) {
	// One lost segment must delay subsequent segments: the gap observed at
	// the receiver around a loss is on the order of the recovery delay,
	// not the 2ms send spacing.
	p := Params{RTT: ms(100)}
	prof := Profile{Segments: []Segment{
		{Start: 0, Params: p},
		{Start: ms(300), Params: p}, // boundary at 300ms flushes in-flight
	}, FlushOnChange: true}
	eng := sim.NewEngine(1)
	var got []delivery
	nw := New(eng, 2, prof, func(to, msg int) {
		got = append(got, delivery{to: to, msg: msg, at: eng.Now()})
	})
	for i := 0; i < 300; i++ {
		i := i
		eng.Schedule(time.Duration(i)*ms(2), func() { nw.Send(0, 1, TCP, i) })
	}
	eng.Run(time.Minute)
	var maxGap time.Duration
	for i := 1; i < len(got); i++ {
		if g := got[i].at - got[i-1].at; g > maxGap {
			maxGap = g
		}
	}
	// Recovery ≈ RTT + 10ms; the segment in flight at the boundary is
	// delayed by that much, and the gap includes the blocked pipeline.
	if maxGap < ms(80) {
		t.Fatalf("max HOL gap = %v, want ≥ 80ms", maxGap)
	}
}

func TestUDPFlushOnChangeDropsInFlight(t *testing.T) {
	p := Params{RTT: ms(100)}
	prof := Profile{Segments: []Segment{
		{Start: 0, Params: p},
		{Start: ms(125), Params: p},
	}, FlushOnChange: true}
	eng := sim.NewEngine(1)
	var got []delivery
	nw := New(eng, 2, prof, func(to, msg int) {
		got = append(got, delivery{to: to, msg: msg, at: eng.Now()})
	})
	// Sent at 100ms, arrives at 150ms — crosses the 125ms boundary → dropped.
	eng.Schedule(ms(100), func() { nw.Send(0, 1, UDP, 1) })
	// Sent at 130ms, arrives 180ms — no boundary crossed → delivered.
	eng.Schedule(ms(130), func() { nw.Send(0, 1, UDP, 2) })
	eng.Run(time.Second)
	if len(got) != 1 || got[0].msg != 2 {
		t.Fatalf("deliveries = %+v, want only msg 2", got)
	}
}

func TestSelfSend(t *testing.T) {
	eng, nw, got := newTestNet(1, 2, Params{RTT: ms(100), Loss: 1})
	eng.Schedule(0, func() { nw.Send(1, 1, UDP, 5) })
	eng.Run(time.Second)
	if len(*got) != 1 || (*got)[0].to != 1 {
		t.Fatalf("self-send failed: %+v", *got)
	}
	if (*got)[0].at > ms(1) {
		t.Fatalf("self-send took %v, want ≈0", (*got)[0].at)
	}
}

func TestSetDownAndPartition(t *testing.T) {
	eng, nw, got := newTestNet(1, 3, Params{RTT: ms(10)})
	nw.SetDown(0, 1, true)
	eng.Schedule(0, func() {
		nw.Send(0, 1, TCP, 1) // dropped
		nw.Send(0, 2, TCP, 2) // delivered
	})
	eng.Run(time.Second)
	if len(*got) != 1 || (*got)[0].msg != 2 {
		t.Fatalf("deliveries = %+v", *got)
	}
	nw.SetDown(0, 1, false)
	nw.PartitionNode(2, true)
	*got = (*got)[:0]
	eng.Schedule(eng.Now()+ms(1), func() {
		nw.Send(0, 1, UDP, 3) // delivered
		nw.Send(0, 2, UDP, 4) // partitioned
		nw.Send(2, 0, UDP, 5) // partitioned
	})
	eng.Run(eng.Now() + time.Second)
	if len(*got) != 1 || (*got)[0].msg != 3 {
		t.Fatalf("after partition: %+v", *got)
	}
}

func TestJitterSpreadsDelays(t *testing.T) {
	eng, nw, got := newTestNet(11, 2, Params{RTT: ms(100), Jitter: ms(5)})
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*ms(10), func() { nw.Send(0, 1, UDP, i) })
	}
	eng.Run(time.Minute)
	var lo, hi time.Duration
	for i, d := range *got {
		delay := d.at - time.Duration(d.msg)*ms(10)
		if i == 0 || delay < lo {
			lo = delay
		}
		if i == 0 || delay > hi {
			hi = delay
		}
	}
	if hi-lo < ms(5) {
		t.Fatalf("jitter spread %v too small", hi-lo)
	}
	if lo < ms(25) {
		t.Fatalf("delay %v below clamp", lo)
	}
}

func TestParamsReflectSchedule(t *testing.T) {
	eng, nw, _ := newTestNet(1, 2, Params{RTT: ms(50)})
	nw.SetAllProfiles(RTTSteps(Params{}, time.Minute, ms(50), ms(500)))
	eng.Run(90 * time.Second)
	if got := nw.Params(0, 1).RTT; got != ms(500) {
		t.Fatalf("Params at 90s RTT = %v, want 500ms", got)
	}
}

// Property: whatever the link parameters, TCP never reorders or loses and
// UDP never delivers more than sent+dups.
func TestPropertyTCPAlwaysInOrderNoLoss(t *testing.T) {
	f := func(seed int64, lossRaw, jitRaw uint8) bool {
		loss := float64(lossRaw%90) / 100
		jit := time.Duration(jitRaw%20) * time.Millisecond
		eng := sim.NewEngine(seed)
		var got []int
		nw := New(eng, 2, Constant(Params{RTT: ms(40), Jitter: jit, Loss: loss}),
			func(to, msg int) { got = append(got, msg) })
		const n = 100
		for i := 0; i < n; i++ {
			i := i
			eng.Schedule(time.Duration(i)*ms(1), func() { nw.Send(0, 1, TCP, i) })
		}
		eng.Run(time.Hour)
		if len(got) != n {
			return false
		}
		for i, m := range got {
			if m != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParetoDelayHeavyTail: DistPareto must keep the typical packet near
// the nominal one-way delay while producing polynomial-tail stragglers a
// Gaussian of the same scale essentially never shows.
func TestParetoDelayHeavyTail(t *testing.T) {
	p := Params{RTT: ms(100), Jitter: ms(10), Dist: DistPareto, Alpha: 1.5}
	const sends = 4000
	base := p.RTT / 2
	// UDP delivery is unordered, so tag each packet with its index and
	// recover the per-packet excess delay from its own send time.
	eng := sim.NewEngine(7)
	var delays []time.Duration
	var nw *Network[int]
	sendAt := make([]time.Duration, sends)
	nw = New(eng, 2, Constant(p), func(to, msg int) {
		delays = append(delays, eng.Now()-sendAt[msg]-base)
	})
	for i := 0; i < sends; i++ {
		i := i
		sendAt[i] = time.Duration(i) * ms(1)
		eng.Schedule(sendAt[i], func() { nw.Send(0, 1, UDP, i) })
	}
	eng.Run(time.Hour)
	if len(delays) != sends {
		t.Fatalf("%d of %d delivered (no loss configured)", len(delays), sends)
	}
	over10x, negative := 0, 0
	var maxExtra time.Duration
	sorted := make([]float64, 0, sends)
	for _, d := range delays {
		if d < 0 {
			negative++
		}
		if d > 10*p.Jitter {
			over10x++
		}
		if d > maxExtra {
			maxExtra = d
		}
		sorted = append(sorted, float64(d))
	}
	if negative > 0 {
		t.Fatalf("%d packets arrived early — the Pareto excess must be one-sided", negative)
	}
	sort.Float64s(sorted)
	med := time.Duration(sorted[len(sorted)/2])
	// Median excess is Jitter·(2^(1/1.5)−1) ≈ 0.59·Jitter.
	if med > 2*p.Jitter {
		t.Fatalf("median excess %v implausibly large for scale %v", med, p.Jitter)
	}
	// The tail: with α=1.5, P(X > 10·scale) ≈ 11^-1.5 ≈ 2.7%; Gaussian
	// 10σ events are nonexistent. Require a healthy straggler count.
	if over10x < sends/200 {
		t.Fatalf("only %d of %d packets exceeded 10× the scale — tail not heavy", over10x, sends)
	}
	if maxExtra > paretoCap {
		t.Fatalf("excess %v above the cap %v", maxExtra, paretoCap)
	}
}

func TestProfileValidatesPareto(t *testing.T) {
	bad := Constant(Params{RTT: ms(50), Jitter: ms(5), Dist: DistPareto, Alpha: 1})
	if err := bad.Validate(); err == nil {
		t.Fatal("alpha <= 1 accepted")
	}
	good := Constant(Params{RTT: ms(50), Jitter: ms(5), Dist: DistPareto, Alpha: 1.2})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid pareto rejected: %v", err)
	}
	unknown := Constant(Params{RTT: ms(50), Dist: DelayDist(9)})
	if err := unknown.Validate(); err == nil {
		t.Fatal("unknown dist accepted")
	}
}
