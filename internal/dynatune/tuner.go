package dynatune

import (
	"math"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/raft"
)

// Tuner implements raft.Tuner with the paper's measurement and tuning
// rules. One Tuner serves one node: the follower half manages the node's
// own election timeout from heartbeats it receives; the leader half
// timestamps outgoing heartbeats and applies per-follower intervals
// piggybacked on responses. Both halves are driven from the node's event
// loop — no internal locking.
type Tuner struct {
	opts Options

	// --- follower side (one leader at a time) ---
	rtts    *metrics.Window // RTT samples in seconds
	ids     *idWindow
	tunedEt time.Duration // 0 = not tuned, use fallback
	tunedH  time.Duration // 0 = not tuned, piggyback nothing

	// EWMA estimator state (EstimatorEWMA): Jacobson/Karels smoothed RTT
	// and deviation, in seconds.
	srtt, rttvar float64
	ewmaReady    bool

	// --- leader side (one entry per follower) ---
	peers map[raft.ID]*peerState

	// resets counts Reset calls (instrumentation).
	resets int
}

type peerState struct {
	seq      uint64
	lastRTT  time.Duration // most recent measured RTT, shipped in next beat
	interval time.Duration // follower-requested h; 0 = fallback
}

// NewTuner validates opts (after filling defaults) and returns a Tuner.
func NewTuner(opts Options) (*Tuner, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Tuner{
		opts:  opts,
		rtts:  metrics.NewWindow(opts.MaxListSize),
		ids:   newIDWindow(opts.MaxListSize),
		peers: make(map[raft.ID]*peerState),
	}, nil
}

// MustNew is NewTuner that panics on invalid options; convenient in
// experiment setup code where options are literals.
func MustNew(opts Options) *Tuner {
	t, err := NewTuner(opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Options returns the effective (default-filled) options.
func (t *Tuner) Options() Options { return t.opts }

// --- raft.Tuner: parameters ---

// ElectionTimeout returns the tuned Et, or the conservative fallback
// before tuning engages (paper §III-B Step 0).
func (t *Tuner) ElectionTimeout() time.Duration {
	if t.tunedEt > 0 {
		return t.tunedEt
	}
	return t.opts.FallbackEt
}

// HeartbeatInterval returns the per-follower interval the leader should
// use: the follower's piggybacked request if one arrived, else the
// fallback.
func (t *Tuner) HeartbeatInterval(peer raft.ID) time.Duration {
	if st, ok := t.peers[peer]; ok && st.interval > 0 {
		return st.interval
	}
	return t.opts.FallbackH
}

// --- raft.Tuner: leader side ---

// PrepareHeartbeat stamps the outgoing heartbeat with the next sequence
// number, the leader-local send time, and the last measured RTT for this
// pair (paper Fig. 3a: the measured RTT travels to the follower on the
// *next* heartbeat).
func (t *Tuner) PrepareHeartbeat(peer raft.ID, now time.Duration) raft.HeartbeatMeta {
	st := t.peer(peer)
	st.seq++
	return raft.HeartbeatMeta{
		Seq:      st.seq,
		SendTime: int64(now),
		RTT:      int64(st.lastRTT),
	}
}

// ObserveHeartbeatResp computes the RTT from the echoed send timestamp
// (leader clock only — immune to clock skew, loss and reordering) and
// adopts the follower's requested interval.
func (t *Tuner) ObserveHeartbeatResp(peer raft.ID, meta raft.HeartbeatRespMeta, now time.Duration) {
	st := t.peer(peer)
	if meta.EchoTime > 0 {
		if rtt := now - time.Duration(meta.EchoTime); rtt > 0 {
			st.lastRTT = rtt
		}
	}
	if meta.Interval > 0 {
		iv := time.Duration(meta.Interval)
		if iv < t.opts.MinH {
			iv = t.opts.MinH
		}
		st.interval = iv
	}
}

func (t *Tuner) peer(id raft.ID) *peerState {
	st, ok := t.peers[id]
	if !ok {
		st = &peerState{}
		t.peers[id] = st
	}
	return st
}

// --- raft.Tuner: follower side ---

// ObserveHeartbeat records the heartbeat's sequence number, folds in the
// RTT the leader measured for the previous beat, retunes (Et, h) when
// enough samples accumulated, and returns the response metadata: the
// echoed timestamp plus the tuned h to piggyback (paper §III-B Steps 1–3).
func (t *Tuner) ObserveHeartbeat(_ raft.ID, meta raft.HeartbeatMeta, _ time.Duration) raft.HeartbeatRespMeta {
	if meta.Seq == 0 && meta.SendTime == 0 {
		// A bare heartbeat (e.g. from a static-tuner leader in a mixed
		// cluster); nothing to measure.
		return raft.HeartbeatRespMeta{}
	}
	if meta.Seq > 0 {
		t.ids.Add(meta.Seq)
	}
	if meta.RTT > 0 {
		r := time.Duration(meta.RTT).Seconds()
		t.rtts.Add(r)
		if !t.ewmaReady {
			t.srtt, t.rttvar, t.ewmaReady = r, r/2, true
		} else {
			t.rttvar = 0.75*t.rttvar + 0.25*abs(t.srtt-r)
			t.srtt = 0.875*t.srtt + 0.125*r
		}
	}
	t.retune()
	return raft.HeartbeatRespMeta{
		EchoTime: meta.SendTime,
		Interval: int64(t.tunedH),
	}
}

// retune recomputes Et from the RTT window and h from the loss rate
// (§III-D). It leaves parameters untuned until MinListSize samples exist.
func (t *Tuner) retune() {
	if t.rtts.Len() < t.opts.MinListSize || t.ids.Len() < t.opts.MinListSize {
		t.tunedEt, t.tunedH = 0, 0
		return
	}
	var etSec float64
	switch t.opts.Estimator {
	case EstimatorEWMA:
		etSec = t.srtt + 2*t.opts.SafetyFactor*t.rttvar
	case EstimatorMax:
		etSec = t.rtts.Max() * (1 + t.opts.SafetyFactor/20)
	default: // EstimatorWindow — the paper's §III-D1 rule
		etSec = t.rtts.Mean() + t.opts.SafetyFactor*t.rtts.Std()
	}
	et := time.Duration(etSec * float64(time.Second))
	if et < t.opts.MinEt {
		et = t.opts.MinEt
	}
	t.tunedEt = et

	k := t.requiredK(t.ids.LossRate())
	h := et / time.Duration(k)
	if h < t.opts.MinH {
		h = t.opts.MinH
	}
	t.tunedH = h
}

// requiredK returns K = ⌈log_p(1−x)⌉ clamped to [1, Et/MinH]: the number
// of heartbeats per Et window needed for arrival probability ≥ x under
// loss p (§III-D2). Fix-K mode returns the configured constant.
func (t *Tuner) requiredK(p float64) int {
	if t.opts.FixK > 0 {
		return t.opts.FixK
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		// Total loss: K is unbounded; the MinH floor on h takes over.
		return int(t.tunedEt / t.opts.MinH)
	}
	k := math.Ceil(math.Log(1-t.opts.ArrivalProbability) / math.Log(p))
	if k < 1 {
		k = 1
	}
	if maxK := float64(t.tunedEt / t.opts.MinH); k > maxK && maxK >= 1 {
		k = maxK
	}
	return int(k)
}

// --- raft.Tuner: reset ---

// Reset discards measurement state (paper §III-B: on timeout or leader
// change the follower drops its lists and returns to Step 0 with default
// parameters; a new leader starts its per-follower state fresh).
func (t *Tuner) Reset(reason raft.ResetReason) {
	t.resets++
	t.rtts.Reset()
	t.ids.Reset()
	t.srtt, t.rttvar, t.ewmaReady = 0, 0, false
	t.tunedEt, t.tunedH = 0, 0
	switch reason {
	case raft.ResetBecameLeader, raft.ResetLeaderChange, raft.ResetTimeout:
		// Leader-side per-peer state is stale in every case: sequence
		// numbers restart under a new regime and old piggybacked
		// intervals no longer reflect measurements.
		t.peers = make(map[raft.ID]*peerState)
	}
}

// --- instrumentation (used by the experiment harness and tests) ---

// Tuned reports whether the follower side currently applies tuned
// parameters.
func (t *Tuner) Tuned() bool { return t.tunedEt > 0 }

// TunedEt returns the tuned election timeout (0 if not tuned).
func (t *Tuner) TunedEt() time.Duration { return t.tunedEt }

// TunedH returns the h this follower currently piggybacks (0 if not
// tuned).
func (t *Tuner) TunedH() time.Duration { return t.tunedH }

// MeasuredRTT returns the current mean and standard deviation of the RTT
// window, in seconds.
func (t *Tuner) MeasuredRTT() (mu, sigma float64) { return t.rtts.Mean(), t.rtts.Std() }

// MeasuredLoss returns the current loss estimate.
func (t *Tuner) MeasuredLoss() float64 { return t.ids.LossRate() }

// SampleCount returns the RTT window population.
func (t *Tuner) SampleCount() int { return t.rtts.Len() }

// Resets returns how many times the tuner fell back to defaults.
func (t *Tuner) Resets() int { return t.resets }

// LeaderIntervals returns a copy of the per-peer intervals currently
// applied on the leader side (fallback entries excluded) — what Fig. 7a
// plots.
func (t *Tuner) LeaderIntervals() map[raft.ID]time.Duration {
	out := make(map[raft.ID]time.Duration, len(t.peers))
	for id, st := range t.peers {
		if st.interval > 0 {
			out[id] = st.interval
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var _ raft.Tuner = (*Tuner)(nil)
