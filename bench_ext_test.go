package bench

import (
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
)

// BenchmarkCrashRecovery extends Fig. 4's failure model from pause
// (volatile state survives) to crash-restart (only the durable store
// survives — the paper's §III-A crash-recovery fault class). Reported:
// detection/OTS means plus the restarted node's tuner re-warm time,
// the cost Dynatune pays for keeping its measurement lists volatile.
func BenchmarkCrashRecovery(b *testing.B) {
	const trials = 100
	run := func(b *testing.B, v cluster.Variant) {
		var det, ots, retune float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunCrashRecoveryTrials(cluster.Options{
				N: 5, Seed: 61 + int64(i), Variant: v, Profile: stable100(),
			}, trials, 4*time.Second, 500*time.Millisecond)
			d, o := res.Summary()
			det, ots = d.Mean, o.Mean
			if len(res.RetuneMs) > 0 {
				var sum float64
				for _, m := range res.RetuneMs {
					sum += m
				}
				retune = sum / float64(len(res.RetuneMs))
			}
		}
		b.ReportMetric(det, "detect-ms")
		b.ReportMetric(ots, "ots-ms")
		b.ReportMetric(retune, "retune-ms")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
}

// BenchmarkLinearizableReads measures etcd's two linearizable read paths
// on top of the tuned parameters: ReadIndex pays one heartbeat round
// (≈RTT); lease reads are free while the check-quorum lease — whose
// window is the *election timeout* — stays covered by heartbeat traffic.
// Dynatune's h = Et/K rule keeps the lease alive by construction, even
// under loss, while shrinking the lease window itself to ≈RTT.
func BenchmarkLinearizableReads(b *testing.B) {
	const reads = 400
	run := func(b *testing.B, v cluster.Variant, mode cluster.ReadMode, loss float64) {
		prof := netsim.Constant(netsim.Params{
			RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: loss,
		})
		var lat, hitPct, failed float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunReadLatency(cluster.Options{
				N: 5, Seed: 77 + int64(i), Variant: v, Profile: prof,
			}, reads, 25*time.Millisecond, mode)
			lat = res.LatencySummary().Mean
			if res.Issued > 0 {
				hitPct = 100 * float64(res.LeaseHits) / float64(res.Issued)
			}
			failed = float64(res.Failed)
		}
		b.ReportMetric(lat, "read-ms")
		b.ReportMetric(hitPct, "lease-hit-%")
		b.ReportMetric(failed, "failed")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft/ReadIndex", func(b *testing.B) { run(b, cluster.VariantRaft(), cluster.ReadModeIndex, 0) })
	b.Run("Raft/Lease", func(b *testing.B) { run(b, cluster.VariantRaft(), cluster.ReadModeLease, 0) })
	b.Run("Dynatune/ReadIndex", func(b *testing.B) {
		run(b, cluster.VariantDynatune(dynatune.Options{}), cluster.ReadModeIndex, 0)
	})
	b.Run("Dynatune/Lease", func(b *testing.B) {
		run(b, cluster.VariantDynatune(dynatune.Options{}), cluster.ReadModeLease, 0)
	})
	b.Run("Dynatune/Lease/loss25", func(b *testing.B) {
		run(b, cluster.VariantDynatune(dynatune.Options{}), cluster.ReadModeLease, 0.25)
	})
}

// BenchmarkAblationEstimator ablates the §III-D1 design choice: the
// paper derives Et from the window mean + s·σ; the alternatives are the
// TCP retransmission-timer EWMA (RFC 6298) and a windowed max. Reported
// per estimator: detection/OTS under jitter, plus false timeouts and OTS
// during a radical RTT spike (Fig. 6b's scenario) — where the EWMA's
// faster forgetting hurts.
func BenchmarkAblationEstimator(b *testing.B) {
	jitterProf := netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 8 * time.Millisecond})
	spikeProf := netsim.RadicalRTTSpike(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 500*time.Millisecond, time.Minute)
	run := func(b *testing.B, e dynatune.Estimator) {
		var det, ots, falseTO, spikeOTS float64
		for i := 0; i < b.N; i++ {
			v := cluster.VariantDynatune(dynatune.Options{Estimator: e})
			elec := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 23 + int64(i), Variant: v, Profile: jitterProf,
			}, 100, 4*time.Second)
			d, o := elec.Summary()
			det, ots = d.Mean, o.Mean
			spike := cluster.RunFluctuation(cluster.Options{
				N: 5, Seed: 25 + int64(i), Variant: v, Profile: spikeProf,
			}, 3*time.Minute, 5*time.Second)
			falseTO = float64(spike.Timeouts)
			spikeOTS = spike.OTS.Total().Seconds()
		}
		b.ReportMetric(det, "detect-ms")
		b.ReportMetric(ots, "ots-ms")
		b.ReportMetric(falseTO, "spike-false-timeouts")
		b.ReportMetric(spikeOTS, "spike-ots-s")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Window", func(b *testing.B) { run(b, dynatune.EstimatorWindow) })
	b.Run("EWMA", func(b *testing.B) { run(b, dynatune.EstimatorEWMA) })
	b.Run("Max", func(b *testing.B) { run(b, dynatune.EstimatorMax) })
}

// BenchmarkMembershipChange grows a 4-voter cluster by one node
// (add-learner → catch-up → promote) and then fails the leader: the
// joiner's Dynatune state is cold right after the join, so detection
// falls to the warmed-up incumbents. Reported: catch-up and promote
// latencies, the joiner's tuner warm-up, and the post-change failover OTS.
func BenchmarkMembershipChange(b *testing.B) {
	const preload = 500
	run := func(b *testing.B, v cluster.Variant) {
		var catchup, tuned, promote, ots float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunMembershipChange(cluster.Options{
				N: 5, Seed: 91 + int64(i), Variant: v, Profile: stable100(),
			}, preload)
			catchup, tuned, promote, ots = res.CatchupMs, res.JoinerTunedMs, res.PromoteMs, res.PostFailoverOTSMs
		}
		b.ReportMetric(catchup, "catchup-ms")
		b.ReportMetric(tuned, "joiner-tuned-ms")
		b.ReportMetric(promote, "promote-ms")
		b.ReportMetric(ots, "post-change-ots-ms")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
}
