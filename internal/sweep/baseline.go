package sweep

import (
	"fmt"
	"math"
)

// The baseline gate: diff a fresh campaign report against a prior one
// and flag every cell metric whose mean moved the wrong way beyond a
// relative threshold. This is the seed of perf gating — run a campaign
// on main, store the JSON report, and any branch re-running the same
// campaign fails loudly when a cell regresses.

// Regression is one flagged cell metric.
type Regression struct {
	// Cell is the row identity ("n=3 loss=0.1").
	Cell   string
	Metric string
	// Base and Cur are the two means; Delta is the relative change in the
	// worse direction (0.25 = 25% worse than baseline).
	Base, Cur, Delta float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%.1f%% worse)", r.Cell, r.Metric, r.Base, r.Cur, r.Delta*100)
}

// Compare diffs cur against base cell by cell. Rows match on their axis
// values; metrics match by name. threshold is the relative worsening of
// a metric's mean that counts as a regression (0.1 = 10%). Cells or
// metrics present on only one side are skipped — a grown grid must not
// fail the gate — but mismatched axis sets are an error since no cell
// could match.
func Compare(cur, base *Report, threshold float64) ([]Regression, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("sweep: compare threshold must be positive, got %v", threshold)
	}
	if cur.Measure != "" && base.Measure != "" && cur.Measure != base.Measure {
		return nil, fmt.Errorf("sweep: measure %q cannot gate against a %q baseline", cur.Measure, base.Measure)
	}
	if len(cur.Axes) != len(base.Axes) {
		return nil, fmt.Errorf("sweep: axis sets differ (%d vs %d axes); reports are not comparable", len(cur.Axes), len(base.Axes))
	}
	for i := range cur.Axes {
		if cur.Axes[i].Name != base.Axes[i].Name {
			return nil, fmt.Errorf("sweep: axis %d is %q here but %q in the baseline", i, cur.Axes[i].Name, base.Axes[i].Name)
		}
	}
	baseRows := make(map[string]Row, len(base.Rows))
	for _, row := range base.Rows {
		baseRows[row.Key(base.Axes)] = row
	}
	var regs []Regression
	matched, compared := 0, 0
	for _, row := range cur.Rows {
		key := row.Key(cur.Axes)
		b, ok := baseRows[key]
		if !ok {
			continue
		}
		matched++
		baseMetrics := make(map[string]MetricSummary, len(b.Metrics))
		for _, m := range b.Metrics {
			baseMetrics[m.Name] = m
		}
		for _, m := range row.Metrics {
			bm, ok := baseMetrics[m.Name]
			if !ok {
				continue
			}
			compared++
			if math.Abs(bm.Mean) < 1e-12 {
				// No relative scale. Only an absolute appearance of a
				// lower-is-better metric (e.g. failed_trials 0 -> 3) counts.
				if m.Better == BetterLower && m.Mean > 1e-12 {
					regs = append(regs, Regression{Cell: key, Metric: m.Name, Base: bm.Mean, Cur: m.Mean, Delta: math.Inf(1)})
				}
				continue
			}
			rel := (m.Mean - bm.Mean) / math.Abs(bm.Mean)
			worse := 0.0
			switch m.Better {
			case BetterLower:
				worse = rel
			case BetterHigher:
				worse = -rel
			default:
				continue
			}
			if worse > threshold {
				regs = append(regs, Regression{Cell: key, Metric: m.Name, Base: bm.Mean, Cur: m.Mean, Delta: worse})
			}
		}
	}
	// A gate that compared nothing must not pass: axis values match as the
	// literal strings the operator typed (a respelled "0.05" vs "0.050"
	// matches no cell), and disjoint metric sets compare no numbers.
	if len(cur.Rows) > 0 {
		if matched == 0 {
			return nil, fmt.Errorf("sweep: no cell of this campaign matches the baseline")
		}
		if compared == 0 {
			return nil, fmt.Errorf("sweep: matching cells share no metrics with the baseline")
		}
	}
	return regs, nil
}
