// Real cluster: boots three in-process dynatuned nodes on loopback with
// the genuine UDP/TCP transport and wall-clock timers, replicates a few
// keys over HTTP, drives a pipelined workload through the binary Front,
// kills the leader, and times the wall-clock failover — the non-simulated
// counterpart of the quickstart.
//
//	go run ./examples/realcluster
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/server"
	"dynatune/internal/transport"
	"dynatune/internal/wireclient"
)

func main() {
	log.SetFlags(0)

	// Reserve three TCP/UDP address pairs on loopback.
	addrs := map[raft.ID]transport.PeerAddr{}
	for id := raft.ID(1); id <= 3; id++ {
		addrs[id] = transport.PeerAddr{TCP: reserve("tcp"), UDP: reserve("udp")}
	}

	// Loopback RTT is tiny, so scale the fallback parameters down to keep
	// the demo snappy; the tuner will still shrink Et to its MinEt floor.
	mkTuner := func() raft.Tuner {
		return dynatune.MustNew(dynatune.Options{
			FallbackEt:  300 * time.Millisecond,
			FallbackH:   30 * time.Millisecond,
			MinListSize: 5,
			MinEt:       25 * time.Millisecond,
			MinH:        2 * time.Millisecond,
		})
	}

	servers := map[raft.ID]*server.Server{}
	for id := raft.ID(1); id <= 3; id++ {
		s, err := server.Start(server.Config{
			ID:         id,
			Peers:      addrs,
			Listen:     addrs[id],
			HTTPListen: "127.0.0.1:0",
			BinListen:  "127.0.0.1:0",
			Tuner:      mkTuner(),
			// The demo kills a node, so suppress the transport's
			// connection-refused drop logs.
			Logger: log.New(io.Discard, "", 0),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Stop()
		servers[id] = s
		fmt.Printf("node %d up: raft %s, http %s\n", id, s.Addrs().TCP, s.HTTPAddr())
	}

	lead := waitLeader(servers)
	fmt.Printf("\nleader elected: node %d\n", lead.Status().ID)

	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("city-%d", i)
		if err := lead.Propose(kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i + 1),
			Key: key, Value: []byte("value")}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("replicated 5 keys through the real transport")

	// Stand a sharded binary Front over the group (one group here) and
	// pipeline a burst of puts and gets through ONE TCP connection: the
	// requests coalesce into batched writes and complete out of order,
	// demuxed by request id.
	binAddrs := make([]string, 0, 3)
	for id := raft.ID(1); id <= 3; id++ {
		binAddrs = append(binAddrs, servers[id].BinAddr())
	}
	bf, err := server.StartBinFront("127.0.0.1:0", [][]string{binAddrs},
		wireclient.PoolConfig{Size: 2}, log.New(io.Discard, "", 0))
	if err != nil {
		log.Fatal(err)
	}
	defer bf.Close()
	conn, err := wireclient.Dial(bf.Addr(), 2*time.Second, wireclient.ConnConfig{})
	if err != nil {
		log.Fatal(err)
	}
	const burst = 200
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		req := wireclient.Request{Op: wireclient.OpPut,
			Key: fmt.Sprintf("burst-%03d", i), Value: []byte("v")}
		if i%2 == 1 {
			req = wireclient.Request{Op: wireclient.OpGet, Key: fmt.Sprintf("burst-%03d", i-1)}
		}
		conn.Do(&req, func(resp wireclient.Response, err error) {
			defer wg.Done()
			if err != nil {
				log.Fatalf("pipelined request: %v", err)
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(t0)
	conn.Close()
	fmt.Printf("pipelined %d binary requests on one connection in %v (%.0f req/s)\n",
		burst, elapsed.Round(time.Millisecond), burst/elapsed.Seconds())

	// Give the tuner a moment, then show what it measured on a follower.
	time.Sleep(time.Second)
	for id, s := range servers {
		st := s.Status()
		if st.State == "follower" {
			fmt.Printf("node %d tuned Et: %.1fms (fallback was 300ms — loopback RTT is ~0.05ms)\n", id, st.EtMs)
			break
		}
	}

	// Kill the leader, measure wall-clock failover.
	leadID := lead.Status().ID
	fmt.Printf("\nstopping leader node %d...\n", leadID)
	start := time.Now()
	lead.Stop()
	delete(servers, leadID)
	newLead := waitLeader(servers)
	fmt.Printf("node %d took over after %v (wall clock)\n", newLead.Status().ID, time.Since(start).Round(time.Millisecond))

	// The data survived the failover.
	if v, ok := newLead.Get("city-0"); ok {
		fmt.Printf("city-0 = %q on the new leader — state intact\n", v)
	}
}

func waitLeader(servers map[raft.ID]*server.Server) *server.Server {
	for {
		for _, s := range servers {
			if s.Status().State == "leader" {
				return s
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func reserve(network string) string {
	if network == "tcp" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	return pc.LocalAddr().String()
}
